// Package shard multiplexes many consensus groups over one process's shared
// resources. A Manager hosts N Fast Raft cores behind a single
// runtime.Machine face: one host timer serves every group's tick wheel, one
// transport endpoint carries every group's traffic (messages are tagged with
// their group; messages to the same destination process coalesce into
// ShardBatch datagrams), and one shared WAL directory absorbs every group's
// writes so fsyncs batch across groups (see storage.WALGroup).
//
// Keys route to groups through a sorted range table: each live group owns
// one contiguous key range [Start, nextStart). The table changes only
// through entries committed in the affected group's own log — KindShardSplit
// carves a daughter group out of a hot range, KindShardMerge folds a cold
// range into its left neighbor — so every member process applies the same
// change at the same log position and the tables converge without any
// cross-group coordination protocol.
//
// The per-group cores are untouched: a Manager is plumbing around
// fastraft.Node, not a new consensus protocol.
package shard

import (
	"fmt"
	"sort"
	"time"

	"github.com/hraft-io/hraft/internal/core/fastraft"
	"github.com/hraft-io/hraft/internal/runtime"
	"github.com/hraft-io/hraft/internal/storage"
	"github.com/hraft-io/hraft/internal/types"
)

// GroupSpec names one initial group and the inclusive lower bound of its
// key range. The first spec's Start must be "" (someone must own the
// smallest keys); specs must be sorted by Start with no duplicates.
type GroupSpec struct {
	ID    types.GroupID
	Start string
}

// Config assembles a Manager.
type Config struct {
	// ProcessID is this process's identity. Every group's core runs under
	// it: group membership is process membership.
	ProcessID types.NodeID
	// Groups is the initial range table (required, at least one entry).
	// Lifecycle changes journaled in Meta replay on top of it at restart.
	Groups []GroupSpec
	// Storage returns the named group's stable storage view — a
	// storage.WAL.Group or storage.ShardMemory.Group slice of the shared
	// store (required).
	Storage func(gid types.GroupID) storage.Storage
	// NewCore builds one group's consensus core over the given storage
	// (required). Called for the initial groups, for daughters created by
	// committed splits, and again at restart for every recovered group.
	// The returned core must use st as its Config.Storage.
	NewCore func(gid types.GroupID, boot types.Config, st storage.Storage) (*fastraft.Node, error)
	// Meta is the manager's routing journal (optional): applied splits and
	// merges are recorded here and replayed at restart so the range table
	// survives. With a shared WAL, pass the WAL itself — the flat
	// namespace is unused by sharded processes. Nil keeps routing volatile.
	Meta storage.Storage
	// SplitSeed, when set, produces the daughter group's initial state
	// image for a split: called at split apply on every member with
	// identical applied state, so every member seeds the same snapshot and
	// the daughter starts with the moved range's data already in place.
	SplitSeed func(parent, daughter types.GroupID, pivot string) []byte
	// MaxBatchBytes bounds one coalesced ShardBatch's estimated payload
	// (default 48 KiB, under the UDP datagram ceiling with headroom for
	// framing). Messages too large to share a batch go out alone.
	MaxBatchBytes int
	// RetireDrain is how long a merged-away group's core stays alive after
	// its proposals resolve, to serve straggler peers (default 1s).
	RetireDrain time.Duration
}

func (c *Config) defaults() error {
	if c.ProcessID == types.None {
		return fmt.Errorf("shard: ProcessID is required")
	}
	if len(c.Groups) == 0 {
		return fmt.Errorf("shard: at least one GroupSpec is required")
	}
	if c.Groups[0].Start != "" {
		return fmt.Errorf("shard: first group's Start must be \"\"")
	}
	for i := 1; i < len(c.Groups); i++ {
		if c.Groups[i].Start <= c.Groups[i-1].Start {
			return fmt.Errorf("shard: GroupSpecs must be sorted by Start without duplicates")
		}
	}
	if c.Storage == nil || c.NewCore == nil {
		return fmt.Errorf("shard: Storage and NewCore are required")
	}
	if c.MaxBatchBytes <= 0 {
		c.MaxBatchBytes = 48 << 10
	}
	if c.RetireDrain <= 0 {
		c.RetireDrain = time.Second
	}
	return nil
}

// rangeEntry is one row of the routing table: keys >= Start route to Group
// until the next row's Start.
type rangeEntry struct {
	Start string
	Group types.GroupID
}

// group is one hosted core plus its lifecycle state.
type group struct {
	id   types.GroupID
	core *fastraft.Node
	// retired marks a group merged away: it no longer owns a range, takes
	// no new proposals, and is garbage-collected once quiet (see gcTick).
	retired   bool
	retiredAt time.Duration
}

// Manager multiplexes many consensus groups behind one runtime.Machine. Not
// safe for concurrent use; hosts serialize all calls, exactly as for a
// single core.
type Manager struct {
	cfg    Config
	boot   types.Config // member processes for bootstrap groups
	groups map[types.GroupID]*group
	order  []*group // sorted by id: deterministic drain order
	ranges []rangeEntry

	metaSeq types.Index

	// pidSeq mints process-wide proposal IDs: cores keep their own per-group
	// sequences for internal proposals (config changes, rejoins), so two
	// groups on one process would otherwise produce colliding (proposer,
	// seq) pairs and confuse process-level resolution tracking.
	pidSeq uint64
	// readSeq/readMap remap per-core read tokens (each core counts from 1)
	// onto one process-wide token space.
	readSeq uint64
	readMap map[shardReadKey]uint64

	now time.Duration

	// stats (monotonic counters except groups gauges).
	statProposals  uint64
	statCoalesced  uint64 // frames that rode inside a sent ShardBatch
	statBatches    uint64 // ShardBatch envelopes sent
	statUnbatched  uint64 // envelopes sent alone
	statFramesIn   uint64 // frames received inside ShardBatches
	statDropped    uint64 // messages for unknown groups
	statSplits     uint64
	statMerges     uint64
	statRetired    uint64 // groups garbage-collected after a merge
	statTransfers  uint64
	statSeedBytes  uint64 // split seed snapshot bytes written
	statMetaReplay uint64 // journaled lifecycle records replayed at boot
}

// New builds a manager: the initial groups open (recovering from their
// storage views), the Meta journal replays routing changes, and every
// recovered live group gets its core.
func New(cfg Config, boot types.Config) (*Manager, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	m := &Manager{
		cfg:     cfg,
		boot:    boot,
		groups:  make(map[types.GroupID]*group),
		readMap: make(map[shardReadKey]uint64),
	}
	for _, gs := range cfg.Groups {
		m.ranges = append(m.ranges, rangeEntry{Start: gs.Start, Group: gs.ID})
	}
	if err := m.replayMeta(); err != nil {
		return nil, err
	}
	for _, r := range m.ranges {
		if _, ok := m.groups[r.Group]; ok {
			continue // a group may appear once only; ranges are unique anyway
		}
		if err := m.openGroup(r.Group, boot); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// openGroup creates the core for a live group over its storage view.
func (m *Manager) openGroup(gid types.GroupID, boot types.Config) error {
	st := m.cfg.Storage(gid)
	core, err := m.cfg.NewCore(gid, boot, st)
	if err != nil {
		return fmt.Errorf("shard: open group %q: %w", gid, err)
	}
	g := &group{id: gid, core: core}
	m.groups[gid] = g
	m.insertOrdered(g)
	return nil
}

func (m *Manager) insertOrdered(g *group) {
	i := sort.Search(len(m.order), func(i int) bool { return m.order[i].id >= g.id })
	m.order = append(m.order, nil)
	copy(m.order[i+1:], m.order[i:])
	m.order[i] = g
}

func (m *Manager) removeOrdered(g *group) {
	for i, o := range m.order {
		if o == g {
			m.order = append(m.order[:i], m.order[i+1:]...)
			return
		}
	}
}

// Route returns the group owning key: the last range whose Start <= key.
func (m *Manager) Route(key string) types.GroupID {
	i := sort.Search(len(m.ranges), func(i int) bool { return m.ranges[i].Start > key })
	return m.ranges[i-1].Group // ranges[0].Start == "" always matches
}

// Ranges returns a copy of the routing table (diagnostics).
func (m *Manager) Ranges() []struct {
	Start string
	Group types.GroupID
} {
	out := make([]struct {
		Start string
		Group types.GroupID
	}, len(m.ranges))
	for i, r := range m.ranges {
		out[i].Start, out[i].Group = r.Start, r.Group
	}
	return out
}

// Groups returns the live (routed) group IDs in sorted order.
func (m *Manager) Groups() []types.GroupID {
	out := make([]types.GroupID, 0, len(m.order))
	for _, g := range m.order {
		if !g.retired {
			out = append(out, g.id)
		}
	}
	return out
}

// Group returns the named group's core (nil if unknown). Tests and the
// public wrapper reach per-group state through it; calls must be serialized
// by the owning host like every other manager call.
func (m *Manager) Group(gid types.GroupID) *fastraft.Node {
	if g, ok := m.groups[gid]; ok {
		return g.core
	}
	return nil
}

// --- runtime.Machine -------------------------------------------------------

// ID returns the process identity shared by every group's core.
func (m *Manager) ID() types.NodeID { return m.cfg.ProcessID }

// Role reports the first live group's role. Multi-group processes hold a
// role per group; use Group(gid) for per-group state.
func (m *Manager) Role() types.Role {
	for _, g := range m.order {
		if !g.retired {
			return g.core.Role()
		}
	}
	return types.RoleFollower
}

// Term reports the first live group's term (see Role).
func (m *Manager) Term() types.Term {
	for _, g := range m.order {
		if !g.retired {
			return g.core.Term()
		}
	}
	return 0
}

// LeaderID reports the first live group's leader view (see Role).
func (m *Manager) LeaderID() types.NodeID {
	for _, g := range m.order {
		if !g.retired {
			return g.core.LeaderID()
		}
	}
	return types.None
}

// CommitIndex reports the sum of all live groups' commit indexes: a single
// monotonic progress figure for a multi-group process.
func (m *Manager) CommitIndex() types.Index {
	var sum types.Index
	for _, g := range m.order {
		if !g.retired {
			sum += g.core.CommitIndex()
		}
	}
	return sum
}

// Step delivers a message: ShardBatch frames unpack and route by their
// group tag, everything else routes by the envelope's group tag. Messages
// for unknown groups drop (the protocols tolerate loss; a retired group's
// stragglers land here).
func (m *Manager) Step(now time.Duration, env types.Envelope) {
	m.now = now
	if b, ok := env.Msg.(types.ShardBatch); ok {
		m.statFramesIn += uint64(len(b.Frames))
		for _, f := range b.Frames {
			m.stepOne(now, types.Envelope{
				From: env.From, To: env.To,
				Layer: f.Layer, Group: f.Group, Msg: f.Msg,
			})
		}
		return
	}
	m.stepOne(now, env)
}

func (m *Manager) stepOne(now time.Duration, env types.Envelope) {
	g, ok := m.groups[env.Group]
	if !ok {
		m.statDropped++
		return
	}
	g.core.Step(now, env)
}

// Tick advances every group whose deadline is due — the single ticker
// wheel: the host arms one timer at NextDeadline and the due groups tick
// together — then garbage-collects quiet retired groups.
func (m *Manager) Tick(now time.Duration) {
	m.now = now
	for _, g := range m.order {
		if d := g.core.NextDeadline(); d > 0 && d <= now {
			g.core.Tick(now)
		}
	}
	m.gcTick(now)
}

// NextDeadline reports the earliest deadline across all groups.
func (m *Manager) NextDeadline() time.Duration {
	var min time.Duration
	for _, g := range m.order {
		if d := g.core.NextDeadline(); d > 0 && (min == 0 || d < min) {
			min = d
		}
	}
	return min
}

// Propose routes by the payload's key and submits to the owning group. The
// whole payload is the key — use ProposeKey when key and value differ.
func (m *Manager) Propose(now time.Duration, data []byte) types.ProposalID {
	_, pid := m.ProposeKey(now, string(data), data)
	return pid
}

// shardSeqBase tags manager-minted proposal sequence numbers: cores count
// their internal proposals from 1, so the two spaces never meet.
const shardSeqBase = uint64(1) << 63

// nextPID mints a process-wide proposal ID.
func (m *Manager) nextPID() types.ProposalID {
	m.pidSeq++
	return types.ProposalID{Proposer: m.cfg.ProcessID, Seq: shardSeqBase | m.pidSeq}
}

// shardReadKey locates one core-local read token.
type shardReadKey struct {
	gid   types.GroupID
	token uint64
}

// ProposeKey routes key through the range table and proposes data in the
// owning group, returning it alongside the proposal ID.
func (m *Manager) ProposeKey(now time.Duration, key string, data []byte) (types.GroupID, types.ProposalID) {
	m.now = now
	gid := m.Route(key)
	g := m.groups[gid]
	m.statProposals++
	pid := g.core.ProposeEntryPID(now, types.Entry{
		Kind: types.KindNormal,
		Data: append([]byte(nil), data...),
	}, m.nextPID())
	return gid, pid
}

// Read registers a linearizable read in the group owning key (see
// fastraft.Node.Read); the returned token is process-wide and resolves
// through TakeGroupReadDone.
func (m *Manager) Read(now time.Duration, key string, c types.ReadConsistency) (types.GroupID, uint64) {
	m.now = now
	gid := m.Route(key)
	coreToken := m.groups[gid].core.Read(now, c)
	m.readSeq++
	m.readMap[shardReadKey{gid: gid, token: coreToken}] = m.readSeq
	return gid, m.readSeq
}

// SyncDone fans a durability advance to every core: all groups share the
// storage LSN space, so one fsync batch releases every group's gated
// outputs at once.
func (m *Manager) SyncDone(now time.Duration, durableLSN uint64) {
	m.now = now
	for _, g := range m.order {
		g.core.SyncDone(now, durableLSN)
	}
}

// TakeOutbox drains every group's outbox and coalesces messages bound for
// the same destination process into ShardBatch envelopes, bounded by the
// byte budget. One datagram then carries many groups' traffic to a peer —
// with 64 groups, a heartbeat round is a handful of batches instead of 64
// individual messages per peer.
func (m *Manager) TakeOutbox() []types.Envelope {
	var out []types.Envelope
	var order []types.NodeID
	buckets := make(map[types.NodeID][]types.Envelope)
	for _, g := range m.order {
		for _, env := range g.core.TakeOutbox() {
			env.Group = g.id
			if _, ok := buckets[env.To]; !ok {
				order = append(order, env.To)
			}
			buckets[env.To] = append(buckets[env.To], env)
		}
	}
	for _, to := range order {
		out = m.packDest(out, to, buckets[to])
	}
	return out
}

// packDest appends one destination's envelopes to out, coalescing into
// batches under the byte budget.
func (m *Manager) packDest(out []types.Envelope, to types.NodeID, envs []types.Envelope) []types.Envelope {
	if len(envs) == 1 {
		m.statUnbatched++
		return append(out, envs[0])
	}
	var frames []types.ShardFrame
	var size int
	flush := func() {
		switch len(frames) {
		case 0:
		case 1:
			// A lone frame needs no batch wrapper.
			m.statUnbatched++
			out = append(out, types.Envelope{
				From: m.cfg.ProcessID, To: to,
				Layer: frames[0].Layer, Group: frames[0].Group, Msg: frames[0].Msg,
			})
		default:
			m.statBatches++
			m.statCoalesced += uint64(len(frames))
			out = append(out, types.Envelope{
				From: m.cfg.ProcessID, To: to, Layer: types.LayerLocal,
				Msg: types.ShardBatch{Frames: frames},
			})
		}
		frames, size = nil, 0
	}
	for _, env := range envs {
		w := msgWeight(env.Msg)
		if w >= m.cfg.MaxBatchBytes {
			// Too large to share a datagram: out alone, batch continues.
			m.statUnbatched++
			out = append(out, env)
			continue
		}
		if size+w > m.cfg.MaxBatchBytes {
			flush()
		}
		frames = append(frames, types.ShardFrame{Group: env.Group, Layer: env.Layer, Msg: env.Msg})
		size += w
	}
	flush()
	return out
}

// msgWeight estimates a message's encoded size for the coalescing budget:
// entry payloads dominate, everything else is framing.
func msgWeight(m types.Message) int {
	const base = 96
	switch v := m.(type) {
	case types.AppendEntries:
		n := base
		for _, e := range v.Entries {
			n += types.EntryWireSize(e)
		}
		return n
	case types.ProposeEntry:
		return base + types.EntryWireSize(v.Entry)
	case types.VoteEntry:
		return base + types.EntryWireSize(v.Entry)
	case types.RequestVoteResp:
		n := base
		for _, e := range v.SelfApproved {
			n += types.EntryWireSize(e)
		}
		return n
	case types.InstallSnapshot:
		return base + len(v.Data)
	default:
		return base
	}
}

// TakeCommitted implements runtime.Machine; multi-group output is drained
// through TakeGroupCommitted instead.
func (m *Manager) TakeCommitted() []types.Entry { return nil }

// TakeResolved implements runtime.Machine (see TakeGroupResolved).
func (m *Manager) TakeResolved() []types.Resolution { return nil }

// TakeGroupCommitted drains every group's newly committed entries in
// per-group commit order, applying shard lifecycle entries (splits and
// merges) as they stream past — that is the point where every member
// process mutates its routing table identically.
func (m *Manager) TakeGroupCommitted() []runtime.GroupEntry {
	var out []runtime.GroupEntry
	// Index-based loop: applySplit appends the daughter to m.order, and the
	// daughter has no output yet.
	for i := 0; i < len(m.order); i++ {
		g := m.order[i]
		for _, e := range g.core.TakeCommitted() {
			switch e.Kind {
			case types.KindShardSplit:
				m.applySplit(g, e)
			case types.KindShardMerge:
				m.applyMerge(g, e)
			}
			out = append(out, runtime.GroupEntry{Group: g.id, Entry: e})
		}
	}
	return out
}

// TakeGroupResolved drains every group's proposal resolutions.
func (m *Manager) TakeGroupResolved() []runtime.GroupResolution {
	var out []runtime.GroupResolution
	for _, g := range m.order {
		for _, r := range g.core.TakeResolved() {
			out = append(out, runtime.GroupResolution{Group: g.id, Resolution: r})
		}
	}
	return out
}

// TakeGroupReadDone drains every group's resolved reads, translating
// core-local tokens back to the process-wide ones Read returned.
func (m *Manager) TakeGroupReadDone() []runtime.GroupRead {
	var out []runtime.GroupRead
	for _, g := range m.order {
		for _, r := range g.core.TakeReadDone() {
			key := shardReadKey{gid: g.id, token: r.ID}
			if pub, ok := m.readMap[key]; ok {
				delete(m.readMap, key)
				r.ID = pub
			}
			out = append(out, runtime.GroupRead{Group: g.id, Done: r})
		}
	}
	return out
}

// PendingProposals counts unresolved proposals across all groups.
func (m *Manager) PendingProposals() int {
	n := 0
	for _, g := range m.order {
		n += g.core.PendingProposals()
	}
	return n
}

// Metrics merges every group's core counters (summed across groups) with
// the manager's own shard.* counters.
func (m *Manager) Metrics() map[string]uint64 {
	out := make(map[string]uint64)
	for _, g := range m.order {
		for k, v := range g.core.Metrics() {
			out[k] += v
		}
	}
	live := uint64(0)
	for _, g := range m.order {
		if !g.retired {
			live++
		}
	}
	out["shard.gauge.groups"] = live
	out["shard.proposals_routed"] = m.statProposals
	out["shard.coalesced_frames"] = m.statCoalesced
	out["shard.batches_sent"] = m.statBatches
	out["shard.sent_unbatched"] = m.statUnbatched
	out["shard.frames_received"] = m.statFramesIn
	out["shard.dropped_unknown_group"] = m.statDropped
	out["shard.splits_applied"] = m.statSplits
	out["shard.merges_applied"] = m.statMerges
	out["shard.groups_retired"] = m.statRetired
	out["shard.leader_transfers"] = m.statTransfers
	out["shard.seed_bytes"] = m.statSeedBytes
	out["shard.meta_replayed"] = m.statMetaReplay
	return out
}

var (
	_ runtime.Machine      = (*Manager)(nil)
	_ runtime.GroupOutputs = (*Manager)(nil)
	_ runtime.Synced       = (*Manager)(nil)
)
