package shard

import (
	"encoding/json"
	"math/rand"
	"testing"
	"time"

	"github.com/hraft-io/hraft/internal/core/fastraft"
	"github.com/hraft-io/hraft/internal/storage"
	"github.com/hraft-io/hraft/internal/types"
)

// newTestManager builds a single-process manager whose groups are
// single-member (they elect themselves and commit without a network),
// backed by the given storage fabric so tests can restart it.
func newTestManager(t *testing.T, stores map[types.GroupID]*storage.Memory, meta storage.Storage, groups []GroupSpec) *Manager {
	t.Helper()
	boot := types.NewConfig("p1")
	m, err := New(Config{
		ProcessID: "p1",
		Groups:    groups,
		Storage: func(gid types.GroupID) storage.Storage {
			st, ok := stores[gid]
			if !ok {
				st = storage.NewMemory()
				stores[gid] = st
			}
			return st
		},
		Meta: meta,
		NewCore: func(gid types.GroupID, gboot types.Config, st storage.Storage) (*fastraft.Node, error) {
			return fastraft.New(fastraft.Config{
				ID:                "p1",
				Bootstrap:         gboot,
				Storage:           st,
				HeartbeatInterval: 10 * time.Millisecond,
				Rand:              rand.New(rand.NewSource(int64(len(gid)) + 1)),
			})
		},
		RetireDrain: 20 * time.Millisecond,
	}, boot)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// drive advances the manager through d of virtual time, ticking due
// deadlines and draining outputs (discarded: single-member groups have no
// peers), returning all committed entries seen.
func drive(m *Manager, from, d time.Duration) (time.Duration, []GroupEntryLike) {
	var out []GroupEntryLike
	end := from + d
	now := from
	for now < end {
		next := m.NextDeadline()
		if next == 0 || next > end {
			now = end
		} else if next > now {
			now = next
		}
		m.Tick(now)
		m.TakeOutbox()
		for _, ge := range m.TakeGroupCommitted() {
			out = append(out, GroupEntryLike{Group: ge.Group, Entry: ge.Entry})
		}
		m.TakeGroupResolved()
		now += time.Millisecond
	}
	return now, out
}

// GroupEntryLike mirrors runtime.GroupEntry without importing runtime in
// assertions.
type GroupEntryLike struct {
	Group types.GroupID
	Entry types.Entry
}

func TestRouteBoundaries(t *testing.T) {
	stores := map[types.GroupID]*storage.Memory{}
	m := newTestManager(t, stores, nil, []GroupSpec{
		{ID: "ga", Start: ""},
		{ID: "gm", Start: "m"},
		{ID: "gt", Start: "t"},
	})
	cases := map[string]types.GroupID{
		"":    "ga",
		"a":   "ga",
		"lzz": "ga",
		"m":   "gm", // inclusive lower bound
		"mm":  "gm",
		"szz": "gm",
		"t":   "gt",
		"zz":  "gt",
	}
	for key, want := range cases {
		if got := m.Route(key); got != want {
			t.Errorf("Route(%q) = %s, want %s", key, got, want)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	base := func() Config {
		return Config{
			ProcessID: "p1",
			Groups:    []GroupSpec{{ID: "g", Start: ""}},
			Storage:   func(types.GroupID) storage.Storage { return storage.NewMemory() },
			NewCore: func(gid types.GroupID, boot types.Config, st storage.Storage) (*fastraft.Node, error) {
				return nil, nil
			},
		}
	}
	bad := []func(*Config){
		func(c *Config) { c.ProcessID = "" },
		func(c *Config) { c.Groups = nil },
		func(c *Config) { c.Groups = []GroupSpec{{ID: "g", Start: "x"}} },
		func(c *Config) {
			c.Groups = []GroupSpec{{ID: "a", Start: ""}, {ID: "b", Start: "m"}, {ID: "c", Start: "m"}}
		},
		func(c *Config) { c.Storage = nil },
		func(c *Config) { c.NewCore = nil },
	}
	for i, mutate := range bad {
		cfg := base()
		mutate(&cfg)
		if err := cfg.defaults(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	cfg := base()
	if err := cfg.defaults(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	if cfg.MaxBatchBytes != 48<<10 || cfg.RetireDrain != time.Second {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}

// TestPackDestCoalescing drives the packer directly: many small messages to
// one peer fold into one ShardBatch, an oversized message travels alone,
// and a lone frame is never wrapped.
func TestPackDestCoalescing(t *testing.T) {
	m := &Manager{cfg: Config{ProcessID: "p1", MaxBatchBytes: 1 << 10}}
	small := func(gid types.GroupID) types.Envelope {
		return types.Envelope{
			From: "p1", To: "p2", Group: gid,
			Msg: types.CommitNotify{},
		}
	}
	envs := []types.Envelope{small("g1"), small("g2"), small("g3")}
	out := m.packDest(nil, "p2", envs)
	if len(out) != 1 {
		t.Fatalf("3 small messages produced %d envelopes, want 1 batch", len(out))
	}
	b, ok := out[0].Msg.(types.ShardBatch)
	if !ok || len(b.Frames) != 3 {
		t.Fatalf("batch = %#v, want 3 frames", out[0].Msg)
	}
	if b.Frames[0].Group != "g1" || b.Frames[2].Group != "g3" {
		t.Fatalf("frame group tags lost: %+v", b.Frames)
	}
	if m.statBatches != 1 || m.statCoalesced != 3 {
		t.Fatalf("stats: batches=%d coalesced=%d", m.statBatches, m.statCoalesced)
	}

	// An InstallSnapshot bigger than the budget goes out alone; the small
	// messages around it still coalesce.
	huge := types.Envelope{From: "p1", To: "p2", Group: "g2",
		Msg: types.InstallSnapshot{Data: make([]byte, 2<<10)}}
	out = m.packDest(nil, "p2", []types.Envelope{small("g1"), huge, small("g3")})
	if len(out) != 2 {
		t.Fatalf("oversize mix produced %d envelopes, want 2", len(out))
	}
	if _, ok := out[0].Msg.(types.InstallSnapshot); !ok {
		t.Fatalf("oversize message was batched: %#v", out[0].Msg)
	}
	if b, ok := out[1].Msg.(types.ShardBatch); !ok || len(b.Frames) != 2 {
		t.Fatalf("remaining small messages not coalesced: %#v", out[1].Msg)
	}

	// A single message to a destination is never wrapped.
	out = m.packDest(nil, "p2", []types.Envelope{small("g1")})
	if len(out) != 1 {
		t.Fatalf("lone message produced %d envelopes", len(out))
	}
	if _, ok := out[0].Msg.(types.ShardBatch); ok {
		t.Fatal("lone message was wrapped in a batch")
	}
}

// TestStepUnpacksBatches checks a received ShardBatch fans its frames to
// their groups and unknown-group frames drop without disturbing the rest.
func TestStepUnpacksBatches(t *testing.T) {
	stores := map[types.GroupID]*storage.Memory{}
	m := newTestManager(t, stores, nil, []GroupSpec{{ID: "ga", Start: ""}})
	m.Step(0, types.Envelope{
		From: "p2", To: "p1", Layer: types.LayerLocal,
		Msg: types.ShardBatch{Frames: []types.ShardFrame{
			{Group: "ga", Layer: types.LayerLocal, Msg: types.CommitNotify{}},
			{Group: "gone", Layer: types.LayerLocal, Msg: types.CommitNotify{}},
		}},
	})
	mt := m.Metrics()
	if mt["shard.frames_received"] != 2 {
		t.Fatalf("frames_received = %d, want 2", mt["shard.frames_received"])
	}
	if mt["shard.dropped_unknown_group"] != 1 {
		t.Fatalf("dropped_unknown_group = %d, want 1", mt["shard.dropped_unknown_group"])
	}
}

// TestSplitMergeLifecycle runs a split and a merge through real committed
// entries on a single-member manager, checks routing and journal effects,
// then restarts the manager over the same storage and checks the meta
// journal rebuilds the same table.
func TestSplitMergeLifecycle(t *testing.T) {
	stores := map[types.GroupID]*storage.Memory{}
	meta := storage.NewMemory()
	seeded := make(map[types.GroupID]string)
	m := newTestManager(t, stores, meta, []GroupSpec{{ID: "ga", Start: ""}})
	m.cfg.SplitSeed = func(parent, daughter types.GroupID, pivot string) []byte {
		seeded[daughter] = pivot
		return []byte("seed@" + pivot)
	}
	now := time.Duration(0)
	now, _ = drive(m, now, 50*time.Millisecond) // let ga elect itself

	if _, err := m.Split(now, "gm", "m"); err != nil {
		t.Fatal(err)
	}
	now, _ = drive(m, now, 100*time.Millisecond)
	if m.Route("x") != "gm" || m.Route("a") != "ga" {
		t.Fatalf("post-split routing wrong: %+v", m.Ranges())
	}
	if m.Group("gm") == nil {
		t.Fatal("daughter core not opened")
	}
	if seeded["gm"] != "m" {
		t.Fatalf("daughter not seeded: %v", seeded)
	}
	snap, ok, err := stores["gm"].LoadSnapshot()
	if err != nil || !ok || string(snap.Data) != "seed@m" {
		t.Fatalf("daughter seed snapshot: ok=%v err=%v data=%q", ok, err, snap.Data)
	}
	// Re-applying the same split entry is a no-op (restart re-emission).
	splitsBefore := m.statSplits
	data := mustJSON(t, splitPayload{Daughter: "gm", Pivot: "m"})
	m.applySplit(m.groups["ga"], types.Entry{Kind: types.KindShardSplit, Data: data})
	if m.statSplits != splitsBefore || len(m.Ranges()) != 2 {
		t.Fatal("duplicate split entry mutated the table")
	}

	// Propose into the daughter, then merge it away.
	_, _ = drive(m, now, 50*time.Millisecond)
	if _, err := m.Merge(now, "gm"); err != nil {
		t.Fatal(err)
	}
	now, _ = drive(m, now, 100*time.Millisecond)
	if m.Route("x") != "ga" {
		t.Fatalf("post-merge routing wrong: %+v", m.Ranges())
	}
	// The retired core garbage-collects after the drain window.
	now, _ = drive(m, now, 200*time.Millisecond)
	if m.Group("gm") != nil {
		t.Fatal("retired group not collected")
	}
	if got := m.Metrics()["shard.groups_retired"]; got != 1 {
		t.Fatalf("groups_retired = %d, want 1", got)
	}

	// Restart: the journal replays split+merge and lands on the same table.
	m2 := newTestManager(t, stores, meta, []GroupSpec{{ID: "ga", Start: ""}})
	if len(m2.Ranges()) != 1 || m2.Route("x") != "ga" {
		t.Fatalf("replayed table wrong: %+v", m2.Ranges())
	}
	if got := m2.Metrics()["shard.meta_replayed"]; got != 2 {
		t.Fatalf("meta_replayed = %d, want 2", got)
	}
}

// TestMergeValidation rejects merging the first range and unknown groups.
func TestMergeValidation(t *testing.T) {
	stores := map[types.GroupID]*storage.Memory{}
	m := newTestManager(t, stores, nil, []GroupSpec{
		{ID: "ga", Start: ""},
		{ID: "gm", Start: "m"},
	})
	if _, err := m.Merge(0, "ga"); err == nil {
		t.Fatal("merging the first range was accepted")
	}
	if _, err := m.Merge(0, "nope"); err == nil {
		t.Fatal("merging an unknown group was accepted")
	}
}

// TestSplitValidation rejects duplicate daughters and degenerate pivots.
func TestSplitValidation(t *testing.T) {
	stores := map[types.GroupID]*storage.Memory{}
	m := newTestManager(t, stores, nil, []GroupSpec{
		{ID: "ga", Start: ""},
		{ID: "gm", Start: "m"},
	})
	if _, err := m.Split(0, "gm", "q"); err == nil {
		t.Fatal("split onto an existing group ID was accepted")
	}
	if _, err := m.Split(0, "gx", "m"); err == nil {
		t.Fatal("split at a range's own start was accepted")
	}
	if _, err := m.Split(0, "gx", ""); err == nil {
		t.Fatal("split with empty pivot was accepted")
	}
}

func mustJSON(t *testing.T, v interface{}) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
