package simnet

import (
	"math/rand"

	"github.com/hraft-io/hraft/internal/types"
)

// Stats counts network activity for experiment reports.
type Stats struct {
	// Sent counts messages handed to the network.
	Sent uint64
	// Delivered counts messages that reached a registered handler.
	Delivered uint64
	// Dropped counts messages lost to random loss.
	Dropped uint64
	// Duplicated counts messages delivered twice.
	Duplicated uint64
	// Cut counts messages blocked by partitions.
	Cut uint64
	// Unroutable counts messages to unregistered destinations.
	Unroutable uint64
}

// Network simulates asynchronous, lossy message passing between registered
// nodes. All randomness comes from the provided source, so runs are fully
// deterministic given a seed.
type Network struct {
	sched *Scheduler
	rng   *rand.Rand
	topo  *Topology

	// LossProb is the independent drop probability per message in [0,1).
	LossProb float64
	// DupProb is the independent probability that a message is delivered
	// twice (UDP may duplicate datagrams; the protocols are idempotent).
	DupProb float64
	// OnDeliver, when set, observes every envelope just before it reaches
	// its handler (after latency, loss and partitions). Tests use it to
	// assert on the traffic a node actually receives.
	OnDeliver func(env types.Envelope)

	handlers map[types.NodeID]func(types.Envelope)
	// blocked holds directed node pairs that cannot communicate
	// (partitions).
	blocked map[[2]types.NodeID]struct{}

	stats Stats
}

// NewNetwork builds a network over the scheduler with the given topology
// (nil means a single implicit region) and seed.
func NewNetwork(sched *Scheduler, topo *Topology, seed int64) *Network {
	if topo == nil {
		topo = NewTopology()
	}
	return &Network{
		sched:    sched,
		rng:      rand.New(rand.NewSource(seed)),
		topo:     topo,
		handlers: make(map[types.NodeID]func(types.Envelope)),
		blocked:  make(map[[2]types.NodeID]struct{}),
	}
}

// Rand exposes the network's deterministic random source so harness
// components share one stream.
func (n *Network) Rand() *rand.Rand { return n.rng }

// Scheduler returns the underlying virtual-time scheduler.
func (n *Network) Scheduler() *Scheduler { return n.sched }

// Topology returns the latency topology.
func (n *Network) Topology() *Topology { return n.topo }

// Register installs the delivery handler for a node. Re-registering
// replaces the handler (a restarted node).
func (n *Network) Register(id types.NodeID, h func(types.Envelope)) {
	n.handlers[id] = h
}

// Unregister removes a node; in-flight and future messages to it are
// dropped. Used for crashes and silent leaves.
func (n *Network) Unregister(id types.NodeID) {
	delete(n.handlers, id)
}

// Registered reports whether the node currently has a handler.
func (n *Network) Registered(id types.NodeID) bool {
	_, ok := n.handlers[id]
	return ok
}

// Block cuts the directed link a→b.
func (n *Network) Block(a, b types.NodeID) { n.blocked[[2]types.NodeID{a, b}] = struct{}{} }

// Unblock restores the directed link a→b.
func (n *Network) Unblock(a, b types.NodeID) { delete(n.blocked, [2]types.NodeID{a, b}) }

// Partition cuts every link between the two groups, both directions.
func (n *Network) Partition(groupA, groupB []types.NodeID) {
	for _, a := range groupA {
		for _, b := range groupB {
			n.Block(a, b)
			n.Block(b, a)
		}
	}
}

// Heal removes all partitions.
func (n *Network) Heal() { n.blocked = make(map[[2]types.NodeID]struct{}) }

// Stats returns a copy of the counters.
func (n *Network) Stats() Stats { return n.stats }

// Send routes one envelope: it may drop it (loss or partition), then
// schedules delivery after a sampled one-way latency. The message is cloned
// so sender and receiver never alias memory.
func (n *Network) Send(env types.Envelope) {
	n.stats.Sent++
	if _, cut := n.blocked[[2]types.NodeID{env.From, env.To}]; cut {
		n.stats.Cut++
		return
	}
	if n.LossProb > 0 && n.rng.Float64() < n.LossProb {
		n.stats.Dropped++
		return
	}
	copies := 1
	if n.DupProb > 0 && n.rng.Float64() < n.DupProb {
		copies = 2
		n.stats.Duplicated++
	}
	for i := 0; i < copies; i++ {
		c := env
		c.Msg = types.CloneMessage(env.Msg)
		delay := n.topo.Latency(string(env.From), string(env.To), n.rng)
		n.sched.After(delay, func() {
			h, ok := n.handlers[c.To]
			if !ok {
				n.stats.Unroutable++
				return
			}
			n.stats.Delivered++
			if n.OnDeliver != nil {
				n.OnDeliver(c)
			}
			h(c)
		})
	}
}
