// Package simnet is a deterministic discrete-event network simulator. It
// replaces the paper's AWS testbed: virtual time, per-region latency (the
// paper's 10–300 ms inter-region / <1 ms intra-region round trips),
// independent per-message loss (the paper's tc-injected loss), partitions
// and node churn — all driven by a single seeded random source, so every
// run is exactly reproducible.
package simnet

import (
	"container/heap"
	"time"
)

// Time is virtual time measured from the start of the simulation.
type Time = time.Duration

// Scheduler is a virtual-time event queue. Events scheduled for the same
// instant run in scheduling order, which keeps runs deterministic.
type Scheduler struct {
	now  Time
	heap eventHeap
	seq  uint64
}

// NewScheduler returns a scheduler at time zero.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Timer is a handle for a scheduled event; Cancel prevents a pending event
// from firing.
type Timer struct {
	ev *event
}

// Cancel stops the timer. Canceling an already-fired or already-canceled
// timer is a no-op. It reports whether the event was still pending.
func (t *Timer) Cancel() bool {
	if t == nil || t.ev == nil || t.ev.canceled {
		return false
	}
	t.ev.canceled = true
	t.ev = nil
	return true
}

// At schedules fn at absolute virtual time at (clamped to now if in the
// past) and returns a cancelable handle.
func (s *Scheduler) At(at Time, fn func()) *Timer {
	if at < s.now {
		at = s.now
	}
	ev := &event{at: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.heap, ev)
	return &Timer{ev: ev}
}

// After schedules fn after delay d.
func (s *Scheduler) After(d Time, fn func()) *Timer {
	return s.At(s.now+d, fn)
}

// Step runs the next pending event, returning false when the queue is
// empty.
func (s *Scheduler) Step() bool {
	for s.heap.Len() > 0 {
		ev := heap.Pop(&s.heap).(*event)
		if ev.canceled {
			continue
		}
		s.now = ev.at
		ev.fn()
		return true
	}
	return false
}

// RunUntil executes events until virtual time exceeds deadline or the queue
// drains. Time is left at min(deadline, time of last event).
func (s *Scheduler) RunUntil(deadline Time) {
	for s.heap.Len() > 0 {
		ev := s.heap[0]
		if ev.canceled {
			heap.Pop(&s.heap)
			continue
		}
		if ev.at > deadline {
			break
		}
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// Pending returns the number of schedulable (non-canceled) events, for
// tests.
func (s *Scheduler) Pending() int {
	n := 0
	for _, ev := range s.heap {
		if !ev.canceled {
			n++
		}
	}
	return n
}

type event struct {
	at       Time
	seq      uint64
	fn       func()
	canceled bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
