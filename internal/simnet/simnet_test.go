package simnet

import (
	"math/rand"
	"testing"
	"time"

	"github.com/hraft-io/hraft/internal/types"
)

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler()
	var order []int
	s.At(30*time.Millisecond, func() { order = append(order, 3) })
	s.At(10*time.Millisecond, func() { order = append(order, 1) })
	s.At(20*time.Millisecond, func() { order = append(order, 2) })
	// Same-time events run in scheduling order.
	s.At(20*time.Millisecond, func() { order = append(order, 20) })
	s.RunUntil(time.Second)
	want := []int{1, 2, 20, 3}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if s.Now() != time.Second {
		t.Fatalf("Now = %s after RunUntil(1s)", s.Now())
	}
}

func TestSchedulerCancel(t *testing.T) {
	s := NewScheduler()
	fired := false
	tm := s.At(10*time.Millisecond, func() { fired = true })
	if !tm.Cancel() {
		t.Fatal("first cancel should succeed")
	}
	if tm.Cancel() {
		t.Fatal("second cancel should be a no-op")
	}
	s.RunUntil(time.Second)
	if fired {
		t.Fatal("canceled event fired")
	}
	if s.Pending() != 0 {
		t.Fatalf("pending = %d", s.Pending())
	}
}

func TestSchedulerEventsScheduleEvents(t *testing.T) {
	s := NewScheduler()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			s.After(10*time.Millisecond, tick)
		}
	}
	s.After(10*time.Millisecond, tick)
	s.RunUntil(time.Second)
	if count != 5 {
		t.Fatalf("count = %d", count)
	}
	if got := s.Now(); got != time.Second {
		t.Fatalf("now = %s", got)
	}
}

func TestSchedulerRunUntilStopsAtDeadline(t *testing.T) {
	s := NewScheduler()
	fired := false
	s.At(500*time.Millisecond, func() { fired = true })
	s.RunUntil(100 * time.Millisecond)
	if fired {
		t.Fatal("future event fired early")
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d", s.Pending())
	}
	s.RunUntil(time.Second)
	if !fired {
		t.Fatal("event never fired")
	}
}

func TestTopologyLatencies(t *testing.T) {
	topo := AWSTopology()
	topo.SetRegion("a", "us-east-1")
	topo.SetRegion("b", "us-east-1")
	topo.SetRegion("c", "eu-west-1")
	if rtt := topo.RTT("a", "b"); rtt != topo.IntraRTT {
		t.Fatalf("intra RTT = %s", rtt)
	}
	if rtt := topo.RTT("a", "c"); rtt != 75*time.Millisecond {
		t.Fatalf("us-east/eu-west RTT = %s", rtt)
	}
	if rtt := topo.RTT("c", "a"); rtt != 75*time.Millisecond {
		t.Fatalf("RTT not symmetric: %s", rtt)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		lat := topo.Latency("a", "c", rng)
		base := 75 * time.Millisecond / 2
		lo := time.Duration(float64(base) * 0.89)
		hi := time.Duration(float64(base) * 1.11)
		if lat < lo || lat > hi {
			t.Fatalf("latency %s outside jitter band [%s, %s]", lat, lo, hi)
		}
	}
	// All modeled region pairs stay within the paper's 10–300 ms band.
	regions := AWSRegions()
	for i, a := range regions {
		for _, b := range regions[i+1:] {
			topo.SetRegion("x", a)
			topo.SetRegion("y", b)
			rtt := topo.RTT("x", "y")
			if rtt < 10*time.Millisecond || rtt > 300*time.Millisecond {
				t.Errorf("RTT %s-%s = %s outside 10-300ms", a, b, rtt)
			}
		}
	}
}

func TestNetworkDeliveryAndLatency(t *testing.T) {
	s := NewScheduler()
	topo := NewTopology()
	topo.SetRegion("a", "r1")
	topo.SetRegion("b", "r2")
	topo.SetRTT("r1", "r2", 100*time.Millisecond)
	topo.JitterFrac = 0
	n := NewNetwork(s, topo, 1)
	var deliveredAt time.Duration
	n.Register("b", func(env types.Envelope) { deliveredAt = s.Now() })
	n.Send(types.Envelope{From: "a", To: "b", Layer: types.LayerLocal,
		Msg: types.JoinRequest{Site: "a"}})
	s.RunUntil(time.Second)
	if deliveredAt != 50*time.Millisecond {
		t.Fatalf("delivered at %s, want 50ms (half RTT)", deliveredAt)
	}
	st := n.Stats()
	if st.Sent != 1 || st.Delivered != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestNetworkLossRate(t *testing.T) {
	s := NewScheduler()
	n := NewNetwork(s, nil, 7)
	n.LossProb = 0.3
	received := 0
	n.Register("b", func(types.Envelope) { received++ })
	const total = 5000
	for i := 0; i < total; i++ {
		n.Send(types.Envelope{From: "a", To: "b", Layer: types.LayerLocal,
			Msg: types.JoinRequest{Site: "a"}})
	}
	s.RunUntil(time.Minute)
	rate := 1 - float64(received)/total
	if rate < 0.27 || rate > 0.33 {
		t.Fatalf("observed loss %.3f, want ~0.30", rate)
	}
	st := n.Stats()
	if st.Dropped+st.Delivered != total {
		t.Fatalf("stats don't add up: %+v", st)
	}
}

func TestNetworkPartitionAndHeal(t *testing.T) {
	s := NewScheduler()
	n := NewNetwork(s, nil, 1)
	got := 0
	n.Register("b", func(types.Envelope) { got++ })
	n.Partition([]types.NodeID{"a"}, []types.NodeID{"b"})
	n.Send(types.Envelope{From: "a", To: "b", Layer: types.LayerLocal,
		Msg: types.JoinRequest{Site: "a"}})
	s.RunUntil(time.Second)
	if got != 0 {
		t.Fatal("partitioned message delivered")
	}
	if n.Stats().Cut != 1 {
		t.Fatalf("cut = %d", n.Stats().Cut)
	}
	n.Heal()
	n.Send(types.Envelope{From: "a", To: "b", Layer: types.LayerLocal,
		Msg: types.JoinRequest{Site: "a"}})
	s.RunUntil(2 * time.Second)
	if got != 1 {
		t.Fatal("healed message not delivered")
	}
}

func TestNetworkUnregisteredDrops(t *testing.T) {
	s := NewScheduler()
	n := NewNetwork(s, nil, 1)
	n.Register("b", func(types.Envelope) { t.Fatal("should not deliver") })
	n.Unregister("b")
	n.Send(types.Envelope{From: "a", To: "b", Layer: types.LayerLocal,
		Msg: types.JoinRequest{Site: "a"}})
	s.RunUntil(time.Second)
	if n.Stats().Unroutable != 1 {
		t.Fatalf("unroutable = %d", n.Stats().Unroutable)
	}
}

func TestNetworkClonesMessages(t *testing.T) {
	s := NewScheduler()
	n := NewNetwork(s, nil, 1)
	var got types.Envelope
	n.Register("b", func(env types.Envelope) { got = env })
	e := types.Entry{Kind: types.KindNormal, Data: []byte("abc")}
	msg := types.ProposeEntry{Index: 1, Entry: e}
	n.Send(types.Envelope{From: "a", To: "b", Layer: types.LayerLocal, Msg: msg})
	// Mutate the sender's copy before delivery.
	e.Data[0] = 'X'
	msg.Entry.Data[1] = 'Y'
	s.RunUntil(time.Second)
	pe, ok := got.Msg.(types.ProposeEntry)
	if !ok {
		t.Fatalf("got %T", got.Msg)
	}
	if string(pe.Entry.Data) != "abc" {
		t.Fatalf("delivered data aliased sender memory: %q", pe.Entry.Data)
	}
}

func TestNetworkDeterminism(t *testing.T) {
	run := func() []time.Duration {
		s := NewScheduler()
		topo := NewTopology()
		n := NewNetwork(s, topo, 42)
		n.LossProb = 0.1
		var times []time.Duration
		n.Register("b", func(types.Envelope) { times = append(times, s.Now()) })
		for i := 0; i < 100; i++ {
			n.Send(types.Envelope{From: "a", To: "b", Layer: types.LayerLocal,
				Msg: types.JoinRequest{Site: "a"}})
		}
		s.RunUntil(time.Second)
		return times
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different delivery counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery %d at %s vs %s", i, a[i], b[i])
		}
	}
}
