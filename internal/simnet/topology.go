package simnet

import (
	"math/rand"
	"sort"
	"time"
)

// Region names a latency domain. Sites in the same region communicate with
// intra-region latency; sites in different regions use the region-pair RTT.
type Region string

// Topology maps nodes to regions and region pairs to round-trip times.
// One-way delivery latency is RTT/2 with multiplicative jitter.
type Topology struct {
	regionOf map[string]Region
	rtt      map[[2]Region]time.Duration
	// IntraRTT is the round trip within a region (default 600µs, matching
	// the paper's "less than 1 ms").
	IntraRTT time.Duration
	// DefaultRTT applies to region pairs without an explicit entry.
	DefaultRTT time.Duration
	// JitterFrac is the ± fraction of multiplicative latency jitter
	// (default 0.1).
	JitterFrac float64
}

// NewTopology returns a topology with paper-like defaults.
func NewTopology() *Topology {
	return &Topology{
		regionOf:   make(map[string]Region),
		rtt:        make(map[[2]Region]time.Duration),
		IntraRTT:   600 * time.Microsecond,
		DefaultRTT: 150 * time.Millisecond,
		JitterFrac: 0.1,
	}
}

// SetRegion assigns a node (by ID string) to a region.
func (t *Topology) SetRegion(node string, r Region) {
	t.regionOf[node] = r
}

// RegionOf returns the node's region ("" if unassigned; unassigned nodes
// are treated as sharing one implicit region).
func (t *Topology) RegionOf(node string) Region { return t.regionOf[node] }

// SetRTT sets the round-trip time between two regions (stored
// symmetrically).
func (t *Topology) SetRTT(a, b Region, rtt time.Duration) {
	t.rtt[pairKey(a, b)] = rtt
}

// RTT returns the round-trip time between the regions of two nodes.
func (t *Topology) RTT(from, to string) time.Duration {
	ra, rb := t.regionOf[from], t.regionOf[to]
	if ra == rb {
		return t.IntraRTT
	}
	if v, ok := t.rtt[pairKey(ra, rb)]; ok {
		return v
	}
	return t.DefaultRTT
}

// Latency samples a one-way delivery latency between two nodes.
func (t *Topology) Latency(from, to string, rng *rand.Rand) time.Duration {
	base := t.RTT(from, to) / 2
	if t.JitterFrac <= 0 || rng == nil {
		return base
	}
	j := 1 + t.JitterFrac*(2*rng.Float64()-1)
	return time.Duration(float64(base) * j)
}

func pairKey(a, b Region) [2]Region {
	if a > b {
		a, b = b, a
	}
	return [2]Region{a, b}
}

// AWSRegions lists the ten modeled regions in a fixed order, used to spread
// clusters geographically like the paper's experiments.
func AWSRegions() []Region {
	return []Region{
		"us-east-1", "us-west-2", "eu-west-1", "eu-central-1", "sa-east-1",
		"ap-northeast-1", "ap-southeast-1", "ap-southeast-2", "ap-south-1",
		"ca-central-1",
	}
}

// awsRTTMillis holds approximate public round-trip times between the
// modeled regions, in milliseconds, clamped to the paper's reported
// 10–300 ms range.
var awsRTTMillis = map[[2]Region]int{
	pairKey("us-east-1", "us-west-2"):           70,
	pairKey("us-east-1", "eu-west-1"):           75,
	pairKey("us-east-1", "eu-central-1"):        90,
	pairKey("us-east-1", "sa-east-1"):           115,
	pairKey("us-east-1", "ap-northeast-1"):      160,
	pairKey("us-east-1", "ap-southeast-1"):      220,
	pairKey("us-east-1", "ap-southeast-2"):      200,
	pairKey("us-east-1", "ap-south-1"):          190,
	pairKey("us-east-1", "ca-central-1"):        15,
	pairKey("us-west-2", "eu-west-1"):           130,
	pairKey("us-west-2", "eu-central-1"):        150,
	pairKey("us-west-2", "sa-east-1"):           175,
	pairKey("us-west-2", "ap-northeast-1"):      100,
	pairKey("us-west-2", "ap-southeast-1"):      170,
	pairKey("us-west-2", "ap-southeast-2"):      140,
	pairKey("us-west-2", "ap-south-1"):          220,
	pairKey("us-west-2", "ca-central-1"):        60,
	pairKey("eu-west-1", "eu-central-1"):        25,
	pairKey("eu-west-1", "sa-east-1"):           180,
	pairKey("eu-west-1", "ap-northeast-1"):      210,
	pairKey("eu-west-1", "ap-southeast-1"):      175,
	pairKey("eu-west-1", "ap-southeast-2"):      280,
	pairKey("eu-west-1", "ap-south-1"):          120,
	pairKey("eu-west-1", "ca-central-1"):        70,
	pairKey("eu-central-1", "sa-east-1"):        200,
	pairKey("eu-central-1", "ap-northeast-1"):   230,
	pairKey("eu-central-1", "ap-southeast-1"):   160,
	pairKey("eu-central-1", "ap-southeast-2"):   290,
	pairKey("eu-central-1", "ap-south-1"):       110,
	pairKey("eu-central-1", "ca-central-1"):     90,
	pairKey("sa-east-1", "ap-northeast-1"):      270,
	pairKey("sa-east-1", "ap-southeast-1"):      300,
	pairKey("sa-east-1", "ap-southeast-2"):      300,
	pairKey("sa-east-1", "ap-south-1"):          300,
	pairKey("sa-east-1", "ca-central-1"):        125,
	pairKey("ap-northeast-1", "ap-southeast-1"): 70,
	pairKey("ap-northeast-1", "ap-southeast-2"): 110,
	pairKey("ap-northeast-1", "ap-south-1"):     120,
	pairKey("ap-northeast-1", "ca-central-1"):   145,
	pairKey("ap-southeast-1", "ap-southeast-2"): 90,
	pairKey("ap-southeast-1", "ap-south-1"):     60,
	pairKey("ap-southeast-1", "ca-central-1"):   215,
	pairKey("ap-southeast-2", "ap-south-1"):     150,
	pairKey("ap-southeast-2", "ca-central-1"):   200,
	pairKey("ap-south-1", "ca-central-1"):       195,
}

// AWSTopology returns a topology pre-loaded with the modeled AWS region
// RTT matrix. Nodes still need SetRegion assignments.
func AWSTopology() *Topology {
	t := NewTopology()
	for k, ms := range awsRTTMillis {
		t.rtt[k] = time.Duration(ms) * time.Millisecond
	}
	return t
}

// Regions returns the regions currently referenced by node assignments,
// sorted, for diagnostics.
func (t *Topology) Regions() []Region {
	set := make(map[Region]struct{})
	for _, r := range t.regionOf {
		set[r] = struct{}{}
	}
	out := make([]Region, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
