package stats

import "time"

// RollingWindow is the span the sliding-window aggregates cover: long
// enough that a console polling every second or two sees stable rates,
// short enough that a stall shows up within a few refreshes.
const RollingWindow = 16 * time.Second

// rollingBuckets is the number of time slices the window rotates through;
// each slice covers RollingWindow / rollingBuckets.
const rollingBuckets = 16

// RollingSnapshot is one point-in-time view of a sliding window: the
// observation rate and latency percentiles over (at most) the last
// RollingWindow of caller time.
type RollingSnapshot struct {
	// Window is the span the snapshot covers.
	Window time.Duration `json:"window"`
	// Count is the number of observations inside the window.
	Count uint64 `json:"count"`
	// RatePerSec is Count divided by the window span.
	RatePerSec float64 `json:"rate_per_sec"`
	// P50 and P99 are bucket-resolved latency percentiles over the window
	// (upper bucket bounds, the same resolution the cumulative
	// hist.stage_* histograms export).
	P50 time.Duration `json:"p50"`
	P99 time.Duration `json:"p99"`
}

// rollSlice is one time slice of the window: an observation count, a
// latency sum, and per-bound counts sharing DefaultLatencyBounds.
type rollSlice struct {
	start  time.Duration
	count  uint64
	counts []uint64
}

// Rolling is a sliding-window latency aggregator: observations land in
// fixed time slices that age out as caller time advances, so Snapshot
// reflects only the recent past — the live complement of the cumulative
// TimingHist. Time is caller-passed (virtual on the simulator). Like the
// other types in this package it is not safe for concurrent use; the
// trace recorder serializes access under its ring lock.
type Rolling struct {
	bounds []time.Duration
	slices [rollingBuckets]rollSlice
}

// NewRolling builds an empty window over DefaultLatencyBounds.
func NewRolling() *Rolling {
	r := &Rolling{bounds: DefaultLatencyBounds()}
	for i := range r.slices {
		r.slices[i].counts = make([]uint64, len(r.bounds)+1)
		r.slices[i].start = -1
	}
	return r
}

// sliceFor rotates to and returns the slice covering now, resetting it if
// it last covered an older rotation of the wheel.
func (r *Rolling) sliceFor(now time.Duration) *rollSlice {
	width := RollingWindow / rollingBuckets
	n := now / width
	s := &r.slices[int(n)%rollingBuckets]
	start := n * width
	if s.start != start {
		s.start = start
		s.count = 0
		for i := range s.counts {
			s.counts[i] = 0
		}
	}
	return s
}

// Observe records one observation of d at caller time now.
func (r *Rolling) Observe(now, d time.Duration) {
	s := r.sliceFor(now)
	s.count++
	i := 0
	for i < len(r.bounds) && d > r.bounds[i] {
		i++
	}
	s.counts[i]++
}

// Snapshot aggregates the slices still inside the window ending at now.
func (r *Rolling) Snapshot(now time.Duration) RollingSnapshot {
	// Rotate the current slice so a long-idle wheel does not resurface
	// stale observations under a recycled slot.
	r.sliceFor(now)
	floor := now - RollingWindow
	total := make([]uint64, len(r.bounds)+1)
	var count uint64
	for i := range r.slices {
		s := &r.slices[i]
		if s.start < 0 || s.start+RollingWindow/rollingBuckets <= floor || s.start > now {
			continue
		}
		count += s.count
		for j, c := range s.counts {
			total[j] += c
		}
	}
	snap := RollingSnapshot{Window: RollingWindow, Count: count}
	if now < RollingWindow {
		snap.Window = now
	}
	if snap.Window > 0 {
		snap.RatePerSec = float64(count) / snap.Window.Seconds()
	}
	snap.P50 = r.quantile(total, count, 0.50)
	snap.P99 = r.quantile(total, count, 0.99)
	return snap
}

// quantile resolves a percentile to the upper bound of the bucket the
// nearest-rank observation falls in (the overflow bucket reports the top
// bound — the histogram cannot see past it).
func (r *Rolling) quantile(counts []uint64, count uint64, q float64) time.Duration {
	if count == 0 {
		return 0
	}
	rank := uint64(q * float64(count))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, c := range counts {
		seen += c
		if seen >= rank {
			if i < len(r.bounds) {
				return r.bounds[i]
			}
			return r.bounds[len(r.bounds)-1]
		}
	}
	return r.bounds[len(r.bounds)-1]
}
