// Package stats provides the small statistics toolkit used by the
// experiment harness: summaries (mean/percentiles), histograms and
// time-series of latency samples.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Sample is one measured event: a value observed at a point in (virtual)
// time.
type Sample struct {
	// At is when the sample completed.
	At time.Duration
	// Value is the measured quantity (for latency series, a duration in
	// seconds is avoided — values stay time.Duration).
	Value time.Duration
}

// Series is an append-only time-ordered collection of samples.
type Series struct {
	samples []Sample
}

// Add appends a sample.
func (s *Series) Add(at, value time.Duration) {
	s.samples = append(s.samples, Sample{At: at, Value: value})
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.samples) }

// Samples returns a copy of the samples in insertion order.
func (s *Series) Samples() []Sample {
	return append([]Sample(nil), s.samples...)
}

// Values returns a copy of just the values.
func (s *Series) Values() []time.Duration {
	out := make([]time.Duration, len(s.samples))
	for i, sm := range s.samples {
		out[i] = sm.Value
	}
	return out
}

// Between returns the samples with At in [lo, hi).
func (s *Series) Between(lo, hi time.Duration) []Sample {
	var out []Sample
	for _, sm := range s.samples {
		if sm.At >= lo && sm.At < hi {
			out = append(out, sm)
		}
	}
	return out
}

// Summary describes a value distribution.
type Summary struct {
	// Count is the number of samples.
	Count int
	// Mean is the arithmetic mean.
	Mean time.Duration
	// Min and Max bound the samples.
	Min time.Duration
	// Max is the largest sample.
	Max time.Duration
	// P50, P90, P99 are percentiles (nearest-rank).
	P50 time.Duration
	// P90 is the 90th percentile.
	P90 time.Duration
	// P99 is the 99th percentile.
	P99 time.Duration
	// Stddev is the population standard deviation.
	Stddev time.Duration
}

// Summarize computes a Summary over the given durations. An empty input
// yields a zero Summary.
func Summarize(values []time.Duration) Summary {
	if len(values) == 0 {
		return Summary{}
	}
	sorted := append([]time.Duration(nil), values...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum float64
	for _, v := range sorted {
		sum += float64(v)
	}
	mean := sum / float64(len(sorted))
	var sq float64
	for _, v := range sorted {
		d := float64(v) - mean
		sq += d * d
	}
	return Summary{
		Count:  len(sorted),
		Mean:   time.Duration(mean),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		P50:    percentile(sorted, 0.50),
		P90:    percentile(sorted, 0.90),
		P99:    percentile(sorted, 0.99),
		Stddev: time.Duration(math.Sqrt(sq / float64(len(sorted)))),
	}
}

// percentile returns the nearest-rank percentile of sorted values.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// String renders the summary compactly.
func (s Summary) String() string {
	if s.Count == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%s p50=%s p90=%s p99=%s min=%s max=%s",
		s.Count, round(s.Mean), round(s.P50), round(s.P90), round(s.P99),
		round(s.Min), round(s.Max))
}

func round(d time.Duration) time.Duration { return d.Round(100 * time.Microsecond) }

// Histogram buckets duration samples for textual display.
type Histogram struct {
	// Bounds are ascending bucket upper bounds; a final overflow bucket
	// catches the rest.
	Bounds []time.Duration
	counts []int
	total  int
}

// NewHistogram builds a histogram with the given ascending upper bounds.
func NewHistogram(bounds ...time.Duration) *Histogram {
	return &Histogram{Bounds: bounds, counts: make([]int, len(bounds)+1)}
}

// Observe adds one sample.
func (h *Histogram) Observe(v time.Duration) {
	for i, b := range h.Bounds {
		if v <= b {
			h.counts[i]++
			h.total++
			return
		}
	}
	h.counts[len(h.counts)-1]++
	h.total++
}

// Counts returns per-bucket counts (the final entry is overflow).
func (h *Histogram) Counts() []int { return append([]int(nil), h.counts...) }

// Total returns the number of observations.
func (h *Histogram) Total() int { return h.total }

// Counters is a set of named monotonic event counters, the first slice of
// the observability surface: consensus internals count what they do
// (snapshot chunks sent, appends throttled, ...) and hosts expose the
// merged snapshot through Node.Metrics or expvar. Counters only ever go
// up; rates are the consumer's job. The zero value is not usable — call
// NewCounters. Not safe for concurrent use; callers serialize access the
// same way they serialize the consensus state machine that feeds it.
type Counters struct {
	m map[string]uint64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters { return &Counters{m: make(map[string]uint64)} }

// Inc adds one to the named counter, creating it at zero first.
func (c *Counters) Inc(name string) { c.Add(name, 1) }

// Add adds delta to the named counter, creating it at zero first.
func (c *Counters) Add(name string, delta uint64) { c.m[name] += delta }

// Get returns the counter's current value (0 if never touched).
func (c *Counters) Get(name string) uint64 { return c.m[name] }

// Snapshot copies the current values; the copy is safe to hand out.
func (c *Counters) Snapshot() map[string]uint64 {
	out := make(map[string]uint64, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}

// MergeInto copies every counter into dst under prefix+name. Used to fold
// per-subsystem counter sets (e.g. C-Raft's local and global instances)
// into one exported map.
func (c *Counters) MergeInto(dst map[string]uint64, prefix string) {
	for k, v := range c.m {
		dst[prefix+k] += v
	}
}

// TimingHist is a fixed-bound cumulative histogram of durations that
// merges into the flat counter snapshots the nodes export: each bucket
// becomes "<name>.le.<bound>" (cumulative count of observations at or
// under the bound, Prometheus-style), plus "<name>.le.inf",
// "<name>.count" and "<name>.sum_us". Like Counters it is not safe for
// concurrent use; callers serialize access with the consensus state
// machine that feeds it.
type TimingHist struct {
	name   string
	bounds []time.Duration
	counts []uint64
	sum    time.Duration
	count  uint64
}

// NewTimingHist builds a histogram with the given ascending upper bounds.
func NewTimingHist(name string, bounds ...time.Duration) *TimingHist {
	return &TimingHist{name: name, bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// DefaultLatencyBounds cover consensus-scale latencies: sub-heartbeat
// through multi-election-timeout.
func DefaultLatencyBounds() []time.Duration {
	return []time.Duration{
		1 * time.Millisecond, 5 * time.Millisecond, 10 * time.Millisecond,
		25 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond,
		250 * time.Millisecond, 500 * time.Millisecond,
		1 * time.Second, 2500 * time.Millisecond, 5 * time.Second,
	}
}

// Observe adds one sample.
func (h *TimingHist) Observe(v time.Duration) {
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			break
		}
	}
	if len(h.bounds) == 0 || v > h.bounds[len(h.bounds)-1] {
		h.counts[len(h.counts)-1]++
	}
	h.sum += v
	h.count++
}

// Count returns the number of observations.
func (h *TimingHist) Count() uint64 { return h.count }

// MergeInto folds the histogram into a flat counter snapshot under
// prefix+name (see the type comment for the key scheme). Buckets are
// emitted cumulatively so consumers can treat them as Prometheus
// histogram buckets directly.
func (h *TimingHist) MergeInto(dst map[string]uint64, prefix string) {
	base := prefix + h.name
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.counts[i]
		dst[fmt.Sprintf("%s.le.%s", base, b)] = cum
	}
	cum += h.counts[len(h.counts)-1]
	dst[base+".le.inf"] = cum
	dst[base+".count"] = h.count
	dst[base+".sum_us"] = uint64(h.sum / time.Microsecond)
}

// Throughput converts a count over a window to events/second.
func Throughput(count int, window time.Duration) float64 {
	if window <= 0 {
		return 0
	}
	return float64(count) / window.Seconds()
}

// SizeHist is TimingHist's dimensionless sibling: a fixed-bound cumulative
// histogram of counts (batch sizes, queue depths). It merges under the
// same key scheme — "<name>.le.<bound>", "<name>.le.inf", "<name>.count"
// and "<name>.sum". Not safe for concurrent use.
type SizeHist struct {
	name   string
	bounds []uint64
	counts []uint64
	sum    uint64
	count  uint64
}

// NewSizeHist builds a histogram with the given ascending upper bounds.
func NewSizeHist(name string, bounds ...uint64) *SizeHist {
	return &SizeHist{name: name, bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// DefaultSizeBounds cover batch sizes from single-record fsyncs through
// deeply amortized batches.
func DefaultSizeBounds() []uint64 {
	return []uint64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}
}

// Observe adds one sample.
func (h *SizeHist) Observe(v uint64) {
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			break
		}
	}
	if len(h.bounds) == 0 || v > h.bounds[len(h.bounds)-1] {
		h.counts[len(h.counts)-1]++
	}
	h.sum += v
	h.count++
}

// Count returns the number of observations.
func (h *SizeHist) Count() uint64 { return h.count }

// MergeInto folds the histogram into a flat counter snapshot under
// prefix+name, buckets cumulative (see TimingHist.MergeInto).
func (h *SizeHist) MergeInto(dst map[string]uint64, prefix string) {
	base := prefix + h.name
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.counts[i]
		dst[fmt.Sprintf("%s.le.%d", base, b)] = cum
	}
	cum += h.counts[len(h.counts)-1]
	dst[base+".le.inf"] = cum
	dst[base+".count"] = h.count
	dst[base+".sum"] = h.sum
}
