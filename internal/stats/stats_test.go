package stats

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestSummarizeKnownValues(t *testing.T) {
	values := []time.Duration{ms(10), ms(20), ms(30), ms(40), ms(100)}
	s := Summarize(values)
	if s.Count != 5 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Mean != ms(40) {
		t.Fatalf("mean = %s", s.Mean)
	}
	if s.Min != ms(10) || s.Max != ms(100) {
		t.Fatalf("min/max = %s/%s", s.Min, s.Max)
	}
	if s.P50 != ms(30) {
		t.Fatalf("p50 = %s", s.P50)
	}
	if s.P90 != ms(100) {
		t.Fatalf("p90 = %s", s.P90)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	if s.String() != "n=0" {
		t.Fatalf("String = %q", s.String())
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	values := []time.Duration{ms(30), ms(10), ms(20)}
	Summarize(values)
	if values[0] != ms(30) || values[1] != ms(10) {
		t.Fatal("input reordered")
	}
}

func TestQuickPercentileOrdering(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200) + 1
		values := make([]time.Duration, n)
		for i := range values {
			values[i] = time.Duration(rng.Intn(10000)) * time.Microsecond
		}
		s := Summarize(values)
		return s.Min <= s.P50 && s.P50 <= s.P90 && s.P90 <= s.P99 &&
			s.P99 <= s.Max && s.Min <= s.Mean && s.Mean <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSeriesBetween(t *testing.T) {
	var s Series
	s.Add(ms(10), ms(1))
	s.Add(ms(20), ms(2))
	s.Add(ms(30), ms(3))
	got := s.Between(ms(10), ms(30))
	if len(got) != 2 || got[0].Value != ms(1) || got[1].Value != ms(2) {
		t.Fatalf("Between = %v", got)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	vals := s.Values()
	if len(vals) != 3 || vals[2] != ms(3) {
		t.Fatalf("Values = %v", vals)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(ms(10), ms(100))
	h.Observe(ms(5))
	h.Observe(ms(10))
	h.Observe(ms(50))
	h.Observe(ms(500))
	counts := h.Counts()
	if counts[0] != 2 || counts[1] != 1 || counts[2] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	if h.Total() != 4 {
		t.Fatalf("total = %d", h.Total())
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(180, time.Minute); got != 3 {
		t.Fatalf("Throughput = %f", got)
	}
	if got := Throughput(10, 0); got != 0 {
		t.Fatalf("zero-window Throughput = %f", got)
	}
}
