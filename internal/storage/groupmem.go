package storage

import "github.com/hraft-io/hraft/internal/types"

// GroupedMemory wraps a Memory with deferred durability for the simulation
// harness: mutations are acknowledged immediately but buffered, and only
// applied to the underlying (crash-surviving) Memory when Sync runs — the
// harness schedules Sync on virtual time to model the group-commit fsync
// window, and Crash discards everything not yet synced, exactly like a real
// machine losing its page cache.
//
// Not safe for concurrent use; the harness is single-threaded on virtual
// time.
type GroupedMemory struct {
	synced    *Memory
	ops       []func(*Memory) error
	lastLSN   uint64
	durLSN    uint64
	onDurable func(uint64)
}

// NewGroupedMemory wraps m (which holds the durable state and survives
// simulated crashes).
func NewGroupedMemory(m *Memory) *GroupedMemory {
	return &GroupedMemory{synced: m}
}

func (g *GroupedMemory) defer_(op func(*Memory) error) error {
	g.ops = append(g.ops, op)
	g.lastLSN++
	return nil
}

// SetHardState implements Storage (buffered until Sync).
func (g *GroupedMemory) SetHardState(hs HardState) error {
	return g.defer_(func(m *Memory) error { return m.SetHardState(hs) })
}

// AppendEntry implements Storage (buffered until Sync).
func (g *GroupedMemory) AppendEntry(e types.Entry) error {
	e = e.Clone()
	return g.defer_(func(m *Memory) error { return m.AppendEntry(e) })
}

// TruncateSuffix implements Storage (buffered until Sync).
func (g *GroupedMemory) TruncateSuffix(idx types.Index) error {
	return g.defer_(func(m *Memory) error { return m.TruncateSuffix(idx) })
}

// SaveSnapshot implements Storage (buffered until Sync).
func (g *GroupedMemory) SaveSnapshot(snap types.Snapshot) error {
	snap = snap.Clone()
	return g.defer_(func(m *Memory) error { return m.SaveSnapshot(snap) })
}

// TruncatePrefix implements Storage (buffered until Sync).
func (g *GroupedMemory) TruncatePrefix(idx types.Index) error {
	return g.defer_(func(m *Memory) error { return m.TruncatePrefix(idx) })
}

// Load implements Storage, returning durable state only: cores load at
// boot, when nothing is pending, and after a crash the buffered suffix is
// exactly what a real machine would have lost.
func (g *GroupedMemory) Load() (HardState, []types.Entry, error) {
	return g.synced.Load()
}

// LoadSnapshot implements Storage (durable state only).
func (g *GroupedMemory) LoadSnapshot() (types.Snapshot, bool, error) {
	return g.synced.LoadSnapshot()
}

// Close implements Storage without flushing: the harness controls
// durability explicitly.
func (g *GroupedMemory) Close() error { return nil }

// GroupCommit implements Grouped.
func (g *GroupedMemory) GroupCommit() bool { return true }

// LastLSN implements Grouped.
func (g *GroupedMemory) LastLSN() uint64 { return g.lastLSN }

// DurableLSN implements Grouped.
func (g *GroupedMemory) DurableLSN() uint64 { return g.durLSN }

// OnDurable implements Grouped.
func (g *GroupedMemory) OnDurable(fn func(lsn uint64)) { g.onDurable = fn }

// Sync implements Grouped: applies every buffered mutation to the durable
// Memory, advances the horizon and fires the callback.
func (g *GroupedMemory) Sync() error {
	if len(g.ops) == 0 {
		return nil
	}
	for _, op := range g.ops {
		if err := op(g.synced); err != nil {
			return err
		}
	}
	g.ops = g.ops[:0]
	g.durLSN = g.lastLSN
	if g.onDurable != nil {
		g.onDurable(g.durLSN)
	}
	return nil
}

// Pending reports whether unsynced mutations are buffered (the harness
// schedules a flush event when true).
func (g *GroupedMemory) Pending() bool { return len(g.ops) > 0 }

// Crash discards every unsynced mutation, modeling power loss before the
// fsync window closed. The LSN counters keep advancing monotonically so a
// restarted node's gates never see the horizon move backwards.
func (g *GroupedMemory) Crash() {
	g.ops = nil
	g.lastLSN = g.durLSN
}

var _ Grouped = (*GroupedMemory)(nil)
