package storage

import "github.com/hraft-io/hraft/internal/types"

// ShardMemory is the in-memory analogue of a multi-group WAL for the
// simulation harness: many consensus groups in one process share one
// deferred-durability store with a single LSN space. Mutations from every
// group buffer into the same op list and are acknowledged immediately; one
// Sync (the harness schedules it on virtual time, modeling the shared fsync
// window) makes every group's pending writes durable at once, and Crash
// discards all of them together — exactly the failure coupling WALGroup
// views of one directory have on a real disk.
//
// Not safe for concurrent use; the harness is single-threaded on virtual
// time.
type ShardMemory struct {
	groups    map[types.GroupID]*shardMemGroup
	ops       []func() error
	lastLSN   uint64
	durLSN    uint64
	onDurable map[types.GroupID]func(uint64)
}

// NewShardMemory returns an empty multi-group store.
func NewShardMemory() *ShardMemory {
	return &ShardMemory{
		groups:    make(map[types.GroupID]*shardMemGroup),
		onDurable: make(map[types.GroupID]func(uint64)),
	}
}

// Group returns the named group's Storage view, creating it on first use.
// The durable state survives Crash; the view survives too, so a restarted
// node re-opens the same group and loads what was synced.
func (s *ShardMemory) Group(gid types.GroupID) *shardMemGroup {
	if gid == "" {
		panic("storage: Group called with empty group ID")
	}
	g, ok := s.groups[gid]
	if !ok {
		g = &shardMemGroup{s: s, id: gid, synced: NewMemory()}
		s.groups[gid] = g
	}
	return g
}

// Pending reports whether unsynced mutations are buffered for any group.
func (s *ShardMemory) Pending() bool { return len(s.ops) > 0 }

// LastLSN returns the shared acknowledged horizon across all groups.
func (s *ShardMemory) LastLSN() uint64 { return s.lastLSN }

// DurableLSN returns the shared durable horizon across all groups.
func (s *ShardMemory) DurableLSN() uint64 { return s.durLSN }

// Sync applies every group's buffered mutations to durable state, advances
// the shared horizon and fires each group's callback with the shared LSN.
func (s *ShardMemory) Sync() error {
	if len(s.ops) == 0 {
		return nil
	}
	for _, op := range s.ops {
		if err := op(); err != nil {
			return err
		}
	}
	s.ops = s.ops[:0]
	s.durLSN = s.lastLSN
	for _, fn := range s.onDurable {
		fn(s.durLSN)
	}
	return nil
}

// Crash discards every group's unsynced mutations, modeling power loss
// before the shared fsync window closed. LSN counters keep advancing
// monotonically so restarted nodes' gates never see the horizon regress.
func (s *ShardMemory) Crash() {
	s.ops = nil
	s.lastLSN = s.durLSN
	for gid := range s.onDurable {
		delete(s.onDurable, gid)
	}
}

// shardMemGroup is one group's Storage+Grouped view over a ShardMemory.
type shardMemGroup struct {
	s      *ShardMemory
	id     types.GroupID
	synced *Memory
}

func (g *shardMemGroup) defer_(op func(*Memory) error) error {
	g.s.ops = append(g.s.ops, func() error { return op(g.synced) })
	g.s.lastLSN++
	return nil
}

// SetHardState implements Storage (buffered until the shared Sync).
func (g *shardMemGroup) SetHardState(hs HardState) error {
	return g.defer_(func(m *Memory) error { return m.SetHardState(hs) })
}

// AppendEntry implements Storage (buffered until the shared Sync).
func (g *shardMemGroup) AppendEntry(e types.Entry) error {
	e = e.Clone()
	return g.defer_(func(m *Memory) error { return m.AppendEntry(e) })
}

// TruncateSuffix implements Storage (buffered until the shared Sync).
func (g *shardMemGroup) TruncateSuffix(idx types.Index) error {
	return g.defer_(func(m *Memory) error { return m.TruncateSuffix(idx) })
}

// SaveSnapshot implements Storage (buffered until the shared Sync).
func (g *shardMemGroup) SaveSnapshot(snap types.Snapshot) error {
	snap = snap.Clone()
	return g.defer_(func(m *Memory) error { return m.SaveSnapshot(snap) })
}

// TruncatePrefix implements Storage (buffered until the shared Sync).
func (g *shardMemGroup) TruncatePrefix(idx types.Index) error {
	return g.defer_(func(m *Memory) error { return m.TruncatePrefix(idx) })
}

// Load implements Storage, returning durable state only (see GroupedMemory).
func (g *shardMemGroup) Load() (HardState, []types.Entry, error) {
	return g.synced.Load()
}

// LoadSnapshot implements Storage (durable state only).
func (g *shardMemGroup) LoadSnapshot() (types.Snapshot, bool, error) {
	return g.synced.LoadSnapshot()
}

// Close implements Storage without flushing: the harness controls
// durability explicitly.
func (g *shardMemGroup) Close() error { return nil }

// GroupCommit implements Grouped.
func (g *shardMemGroup) GroupCommit() bool { return true }

// LastLSN implements Grouped (shared across all groups).
func (g *shardMemGroup) LastLSN() uint64 { return g.s.lastLSN }

// DurableLSN implements Grouped (shared across all groups).
func (g *shardMemGroup) DurableLSN() uint64 { return g.s.durLSN }

// OnDurable implements Grouped. Dropped on Crash — a restarted node
// re-registers its own callback.
func (g *shardMemGroup) OnDurable(fn func(lsn uint64)) { g.s.onDurable[g.id] = fn }

// Sync implements Grouped by flushing the whole shared store.
func (g *shardMemGroup) Sync() error { return g.s.Sync() }

var (
	_ Storage = (*shardMemGroup)(nil)
	_ Grouped = (*shardMemGroup)(nil)
)
