package storage

import (
	"encoding/binary"
	"fmt"

	"github.com/hraft-io/hraft/internal/types"
)

// WALGroup is one consensus group's Storage view over a shared WAL
// directory. A shard manager multiplexes many groups over one process; each
// group gets its own fully independent log, hard state and snapshot, but all
// groups share the directory, the segments, the group-commit buffer and the
// LSN space. The payoff is the fsync path: concurrent mutations from
// different groups land in the same pending batch, so one fsync makes every
// group's writes durable at once instead of one fsync per group.
//
// Obtain views with WAL.Group. A view's Close is a no-op — the owner closes
// the parent WAL, which flushes and closes everything.
type WALGroup struct {
	w  *WAL
	id types.GroupID

	// Replayed state (guarded by w.mu).
	hs       HardState
	entries  map[types.Index]types.Entry
	snap     types.Snapshot
	snapMeta types.SnapshotMeta
	// floorIdx is the group's compaction boundary: its last TruncatePrefix
	// argument, re-seeded from its snapshot on recovery. A shared segment is
	// droppable only once every group's floor covers its slice (see
	// segCoveredLocked).
	floorIdx types.Index
}

// Group returns the named group's Storage view. All views share the parent's
// flusher and LSN space; the flat namespace (the WAL's own Storage methods)
// stays fully independent. Panics on an empty group ID — that's the flat
// namespace, not a group.
func (w *WAL) Group(gid types.GroupID) *WALGroup {
	if gid == "" {
		panic("storage: Group called with empty group ID")
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.ensureGroupLocked(gid)
}

// Groups lists the group IDs known to this WAL (replayed or created),
// in no particular order.
func (w *WAL) Groups() []types.GroupID {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]types.GroupID, 0, len(w.groups))
	for gid := range w.groups {
		out = append(out, gid)
	}
	return out
}

// ID returns the group this view writes to.
func (g *WALGroup) ID() types.GroupID { return g.id }

// SetHardState implements Storage.
func (g *WALGroup) SetHardState(hs HardState) error {
	w := g.w
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.appendBodyLocked(groupBody(recGroupHardState, g.id, hardStateBody(hs)[1:])); err != nil {
		return err
	}
	g.hs = hs
	return nil
}

// AppendEntry implements Storage. Encoded into the parent's reused scratch
// buffer, so steady-state appends do not allocate — same hot path as the
// flat namespace, plus the group prefix.
func (g *WALGroup) AppendEntry(e types.Entry) error {
	w := g.w
	w.mu.Lock()
	defer w.mu.Unlock()
	w.recBuf = append(w.recBuf[:0], recGroupEntry)
	w.recBuf = binary.AppendUvarint(w.recBuf, uint64(len(g.id)))
	w.recBuf = append(w.recBuf, g.id...)
	w.recBuf = types.AppendEntryTo(w.recBuf, e)
	// Count the entry toward the active segment's per-group maxima before
	// the append — the append may roll the segment, and the sealed metadata
	// must cover every entry the sealed file carries.
	if e.Index > w.activeGLast[g.id] {
		w.activeGLast[g.id] = e.Index
	}
	if err := w.appendBodyLocked(w.recBuf); err != nil {
		return err
	}
	g.entries[e.Index] = e.Clone()
	return nil
}

// TruncateSuffix implements Storage. Sealed-segment group maxima are
// re-clamped so compaction can still drop a segment whose surviving entries
// all sit below the group's snapshot.
func (g *WALGroup) TruncateSuffix(idx types.Index) error {
	w := g.w
	w.mu.Lock()
	defer w.mu.Unlock()
	body := groupBody(recGroupTruncate, g.id, binary.AppendUvarint(nil, uint64(idx)))
	if err := w.appendBodyLocked(body); err != nil {
		return err
	}
	for i := range g.entries {
		if i > idx {
			delete(g.entries, i)
		}
	}
	if last, ok := w.activeGLast[g.id]; ok && last > idx {
		w.activeGLast[g.id] = idx
	}
	clamped := false
	for i := range w.sealed {
		if last, ok := w.sealed[i].GLast[g.id]; ok && last > idx {
			w.sealed[i].GLast[g.id] = idx
			clamped = true
		}
	}
	if clamped {
		return w.writeManifestLocked()
	}
	return nil
}

// SaveSnapshot implements Storage: written atomically to the group's own
// sidecar (snap-<hex group ID>), then marked in the shared log.
func (g *WALGroup) SaveSnapshot(snap types.Snapshot) error {
	if snap.IsZero() {
		return fmt.Errorf("storage: save empty snapshot")
	}
	if err := writeSnapshotFile(groupSnapPath(g.w.dir, g.id), snap); err != nil {
		return err
	}
	w := g.w
	w.mu.Lock()
	defer w.mu.Unlock()
	// Marker: meta only (no state bytes) — the sidecar holds the data.
	marker := types.Snapshot{Meta: snap.Meta}
	if err := w.appendBodyLocked(groupBody(recGroupSnapshot, g.id, types.EncodeSnapshot(marker))); err != nil {
		return err
	}
	g.snap = snap.Clone()
	g.snapMeta = snap.Meta
	return nil
}

// TruncatePrefix implements Storage: raises this group's compaction floor
// and drops any sealed segment now covered by every namespace's floor. A
// segment interleaving several groups' records is only reclaimed once the
// last straggler group compacts past its slice.
func (g *WALGroup) TruncatePrefix(idx types.Index) error {
	w := g.w
	w.mu.Lock()
	defer w.mu.Unlock()
	for i := range g.entries {
		if i <= idx {
			delete(g.entries, i)
		}
	}
	if idx > g.floorIdx {
		g.floorIdx = idx
	}
	return w.dropCoveredLocked()
}

// Load implements Storage.
func (g *WALGroup) Load() (HardState, []types.Entry, error) {
	w := g.w
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]types.Entry, 0, len(g.entries))
	for _, e := range g.entries {
		if e.Index <= g.snap.Meta.LastIndex {
			continue
		}
		out = append(out, e.Clone())
	}
	sortEntries(out)
	return g.hs, out, nil
}

// LoadSnapshot implements Storage.
func (g *WALGroup) LoadSnapshot() (types.Snapshot, bool, error) {
	w := g.w
	w.mu.Lock()
	defer w.mu.Unlock()
	if g.snap.IsZero() {
		return types.Snapshot{}, false, nil
	}
	return g.snap.Clone(), true, nil
}

// Close implements Storage as a no-op: the view does not own the directory.
// Close the parent WAL to flush and release everything.
func (g *WALGroup) Close() error { return nil }

// GroupCommit implements Grouped (shared with the parent).
func (g *WALGroup) GroupCommit() bool { return g.w.opt.GroupCommit }

// LastLSN implements Grouped. The LSN space is shared across all groups and
// the flat namespace — that sharing is what batches fsyncs across groups.
func (g *WALGroup) LastLSN() uint64 { return g.w.LastLSN() }

// DurableLSN implements Grouped.
func (g *WALGroup) DurableLSN() uint64 { return g.w.DurableLSN() }

// OnDurable implements Grouped. Each group's callback fires with the shared
// LSN after every durable batch, alongside the parent's own callback.
func (g *WALGroup) OnDurable(fn func(lsn uint64)) {
	w := g.w
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.groupDurable == nil {
		w.groupDurable = make(map[types.GroupID]func(uint64))
	}
	w.groupDurable[g.id] = fn
}

// Sync implements Grouped: flushes the shared buffer, so it also makes every
// other group's pending writes durable.
func (g *WALGroup) Sync() error { return g.w.Sync() }

var (
	_ Storage = (*WALGroup)(nil)
	_ Grouped = (*WALGroup)(nil)
)
