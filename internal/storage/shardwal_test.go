package storage

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/hraft-io/hraft/internal/types"
)

// TestShardWALGroupsAreIndependent runs the full Storage scenarios through
// two group views and the flat namespace of one directory, then reopens and
// checks each namespace replays its own state untouched by the others.
func TestShardWALGroupsAreIndependent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard.wal")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	storageScenario(t, w.Group("ga"))
	snapshotScenario(t, w.Group("gb"))
	// Flat namespace writes interleave with the group records.
	if err := w.SetHardState(HardState{Term: 9, VotedFor: "flat"}); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendEntry(entry(1, 9, "flat-entry")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	hs, entries, err := w2.Group("ga").Load()
	if err != nil {
		t.Fatal(err)
	}
	if hs.Term != 3 || hs.VotedFor != "n2" || len(entries) != 4 {
		t.Fatalf("group ga after reopen: hs=%+v entries=%d", hs, len(entries))
	}
	gsnap, ok, err := w2.Group("gb").LoadSnapshot()
	if err != nil || !ok || gsnap.Meta.LastIndex != 6 || string(gsnap.Data) != "state@6" {
		t.Fatalf("group gb snapshot after reopen: ok=%v err=%v snap=%v", ok, err, gsnap)
	}
	hsB, entriesB, err := w2.Group("gb").Load()
	if err != nil {
		t.Fatal(err)
	}
	if hsB.Term != 2 || len(entriesB) != 5 || entriesB[0].Index != 7 {
		t.Fatalf("group gb after reopen: hs=%+v entries=%v", hsB, entriesB)
	}
	flatHS, flatEntries, err := w2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if flatHS.Term != 9 || flatHS.VotedFor != "flat" || len(flatEntries) != 1 {
		t.Fatalf("flat namespace after reopen: hs=%+v entries=%d", flatHS, len(flatEntries))
	}
	if _, ok, _ := w2.LoadSnapshot(); ok {
		t.Fatal("flat namespace inherited a group snapshot")
	}
}

// TestShardWALCrossGroupFsyncBatching is the point of the shared WAL: under
// group commit, appends from many groups ride the same pending buffer, so a
// whole multi-group burst costs a handful of fsyncs, not one per group.
func TestShardWALCrossGroupFsyncBatching(t *testing.T) {
	path := filepath.Join(t.TempDir(), "batch.wal")
	fsyncs := 0
	w, err := OpenWALOptions(path, WALOptions{
		GroupCommit: true,
		SyncWindow:  time.Hour, // only explicit Sync flushes
		FsyncObserver: func(records, bytes int, took time.Duration) {
			fsyncs++
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	const groups, perGroup = 8, 16
	for gi := 0; gi < groups; gi++ {
		g := w.Group(types.GroupID(fmt.Sprintf("g%d", gi)))
		for i := types.Index(1); i <= perGroup; i++ {
			if err := g.AppendEntry(entry(i, 1, "x")); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Group("g0").Sync(); err != nil {
		t.Fatal(err)
	}
	if fsyncs != 1 {
		t.Fatalf("%d groups x %d appends took %d fsyncs, want 1 shared batch",
			groups, perGroup, fsyncs)
	}
	for gi := 0; gi < groups; gi++ {
		g := w.Group(types.GroupID(fmt.Sprintf("g%d", gi)))
		if _, entries, _ := g.Load(); len(entries) != perGroup {
			t.Fatalf("group g%d lost entries: %d", gi, len(entries))
		}
	}
}

// TestShardWALGroupDurableCallbacksShareLSN checks every group's OnDurable
// callback fires with the shared horizon after one batch.
func TestShardWALGroupDurableCallbacksShareLSN(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cb.wal")
	w, err := OpenWALOptions(path, WALOptions{GroupCommit: true, SyncWindow: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	got := make(map[types.GroupID]uint64)
	done := make(chan types.GroupID, 2)
	for _, gid := range []types.GroupID{"a", "b"} {
		gid := gid
		g := w.Group(gid)
		g.OnDurable(func(lsn uint64) {
			got[gid] = lsn
			done <- gid
		})
		if err := g.AppendEntry(entry(1, 1, "x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	<-done
	<-done
	if got["a"] != 2 || got["b"] != 2 {
		t.Fatalf("durable callbacks saw %v, want shared LSN 2 for both", got)
	}
}

// TestShardWALSegmentGCWaitsForEveryGroup interleaves two groups' entries in
// small shared segments: compacting one group must keep the segments alive
// for the straggler, and compacting the straggler reclaims them.
func TestShardWALSegmentGCWaitsForEveryGroup(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gc2.wal")
	w, err := OpenWALOptions(path, smallSegOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	ga, gb := w.Group("ga"), w.Group("gb")
	for i := types.Index(1); i <= 40; i++ {
		if err := ga.AppendEntry(entry(i, 1, "aaaaaaaaaaaaaaaa")); err != nil {
			t.Fatal(err)
		}
		if err := gb.AppendEntry(entry(i, 1, "bbbbbbbbbbbbbbbb")); err != nil {
			t.Fatal(err)
		}
	}
	sealedBefore, _ := w.SegmentCount()
	if sealedBefore == 0 {
		t.Fatal("test needs sealed segments; lower SegmentBytes")
	}
	if err := ga.SaveSnapshot(snap(40, 1, "a@40")); err != nil {
		t.Fatal(err)
	}
	if err := ga.TruncatePrefix(40); err != nil {
		t.Fatal(err)
	}
	sealedMid, _ := w.SegmentCount()
	if sealedMid != sealedBefore {
		t.Fatalf("segments dropped while group gb still needs them: %d -> %d",
			sealedBefore, sealedMid)
	}
	if err := gb.SaveSnapshot(snap(40, 1, "b@40")); err != nil {
		t.Fatal(err)
	}
	if err := gb.TruncatePrefix(40); err != nil {
		t.Fatal(err)
	}
	sealedAfter, _ := w.SegmentCount()
	if sealedAfter != 0 {
		t.Fatalf("all groups compacted but %d sealed segments remain", sealedAfter)
	}

	// Recovery from the compacted directory: both groups load snapshot-only.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	for _, gid := range []types.GroupID{"ga", "gb"} {
		s, ok, err := w2.Group(gid).LoadSnapshot()
		if err != nil || !ok || s.Meta.LastIndex != 40 {
			t.Fatalf("group %s snapshot after GC+reopen: ok=%v err=%v snap=%v", gid, ok, err, s)
		}
		if _, entries, _ := w2.Group(gid).Load(); len(entries) != 0 {
			t.Fatalf("group %s: %d entries survived full compaction", gid, len(entries))
		}
	}
}

// TestShardWALOpensV4Directories: a directory written before the group
// format (manifest version 4, no group records) opens unchanged.
func TestShardWALOpensV4Directories(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v4.wal")
	w, err := OpenWALOptions(path, smallSegOpts())
	if err != nil {
		t.Fatal(err)
	}
	storageScenario(t, w)
	// Enough bulk to seal a 256-byte segment, so a manifest exists.
	for i := types.Index(5); i <= 24; i++ {
		if err := w.AppendEntry(entry(i, 3, "0123456789abcdef0123456789abcdef")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Rewrite the manifest claiming format 4 (the pre-group directory
	// format); record-level layouts are identical for flat records.
	man, ok, err := readManifest(path)
	if err != nil || !ok {
		t.Fatalf("manifest: ok=%v err=%v", ok, err)
	}
	man.Version = 4
	data, _ := json.Marshal(man)
	if err := os.WriteFile(manifestPath(path), data, 0o644); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatalf("v4 directory rejected: %v", err)
	}
	defer w2.Close()
	hs, entries, err := w2.Load()
	if err != nil || hs.Term != 3 || len(entries) != 24 {
		t.Fatalf("v4 reopen: hs=%+v entries=%d err=%v", hs, len(entries), err)
	}
}

// TestShardMemorySharedCrashWindow: one ShardMemory crash loses every
// group's unsynced suffix together, like one machine's page cache.
func TestShardMemorySharedCrashWindow(t *testing.T) {
	sm := NewShardMemory()
	ga, gb := sm.Group("a"), sm.Group("b")
	if err := ga.AppendEntry(entry(1, 1, "a1")); err != nil {
		t.Fatal(err)
	}
	if err := sm.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := ga.AppendEntry(entry(2, 1, "a2")); err != nil {
		t.Fatal(err)
	}
	if err := gb.AppendEntry(entry(1, 1, "b1")); err != nil {
		t.Fatal(err)
	}
	if ga.DurableLSN() != 1 || ga.LastLSN() != 3 {
		t.Fatalf("shared LSN space: dur=%d last=%d", ga.DurableLSN(), ga.LastLSN())
	}
	sm.Crash()
	if _, entries, _ := ga.Load(); len(entries) != 1 {
		t.Fatalf("group a after crash: %d entries, want 1 (synced only)", len(entries))
	}
	if _, entries, _ := gb.Load(); len(entries) != 0 {
		t.Fatalf("group b after crash: %d entries, want 0", len(entries))
	}
	if gb.LastLSN() != 1 {
		t.Fatalf("LSN regressed below durable or kept lost ops: %d", gb.LastLSN())
	}
}
