// Package storage provides the stable storage the paper assumes every site
// has ("each site has a means of stable storage that can be read from upon
// recovery").
//
// Two implementations are provided:
//
//   - Memory: an in-process store that survives simulated crashes (the
//     simulation harness keeps it while restarting the node state machine);
//   - WAL: a file-backed write-ahead log with CRC-framed records and
//     torn-tail recovery, for real deployments (cmd/hraft-node).
//
// The consensus cores persist three things, matching the paper's persistent
// state: currentTerm, votedFor and the log entries (with their approval
// markers). commitIndex is volatile and relearned from the leader.
package storage

import (
	"github.com/hraft-io/hraft/internal/types"
)

// HardState is the persistent non-log state of a site.
type HardState struct {
	// Term is the site's current term.
	Term types.Term
	// VotedFor is the candidate the site voted for in Term (None if no
	// vote).
	VotedFor types.NodeID
}

// Storage is the stable-storage interface the consensus cores write
// through. Implementations must make each call durable before returning —
// unless they also implement Grouped with GroupCommit() true, in which case
// appends may be acknowledged from a buffer and the caller must gate
// everything externally visible on the durability horizon (DurableLSN).
type Storage interface {
	// SetHardState durably records term and vote.
	SetHardState(hs HardState) error
	// AppendEntry durably records the entry at e.Index (inserting or
	// replacing that slot).
	AppendEntry(e types.Entry) error
	// TruncateSuffix durably removes all entries with index > idx (classic
	// Raft conflict resolution).
	TruncateSuffix(idx types.Index) error
	// SaveSnapshot durably records a snapshot, making it the recovery base.
	// A later snapshot replaces an earlier one. Saving a snapshot does not
	// by itself remove log entries; callers follow with TruncatePrefix.
	SaveSnapshot(snap types.Snapshot) error
	// TruncatePrefix durably removes all entries with index <= idx (log
	// compaction after a snapshot covering the prefix has been saved).
	TruncatePrefix(idx types.Index) error
	// Load returns the persisted state and all persisted entries sorted
	// ascending by index, reflecting inserts, replacements, truncations and
	// compactions. Entries covered by a saved snapshot are not returned.
	Load() (HardState, []types.Entry, error)
	// LoadSnapshot returns the latest saved snapshot (ok=false if none).
	LoadSnapshot() (types.Snapshot, bool, error)
	// Close releases resources. The store must remain loadable afterwards.
	Close() error
}

// Grouped extends Storage with group commit: mutations are acknowledged
// from a buffer and made durable in batches (one buffered write + one fsync
// per batch). Every mutation is assigned a log sequence number (LSN);
// DurableLSN reports how far the fsync horizon has advanced. The consensus
// cores hold everything externally visible — outbound messages, committed
// entries, resolutions, their own vote/match self-acknowledgements — until
// the records they depend on are durable, so the ack-after-fsync contract
// of classic storage is preserved end to end while fsyncs amortize across
// concurrent proposals.
type Grouped interface {
	Storage
	// GroupCommit reports whether the store is actually deferring
	// durability. Implementations that expose LSNs but sync inline (for
	// uniformity) return false and need no gating.
	GroupCommit() bool
	// LastLSN returns the LSN of the most recently accepted mutation (0 if
	// none yet).
	LastLSN() uint64
	// DurableLSN returns the highest LSN known durable. Always ≤ LastLSN;
	// equal when nothing is pending.
	DurableLSN() uint64
	// OnDurable registers a callback invoked (from the store's flush
	// context, without internal locks held) after each batch becomes
	// durable, with the new durable LSN. At most one callback is retained.
	OnDurable(fn func(lsn uint64))
	// Sync forces everything pending durable and blocks until
	// DurableLSN == LastLSN (or a write error, which is returned and
	// sticky).
	Sync() error
}

// AsGrouped returns s as a group-commit store when it both implements
// Grouped and actually defers durability; nil otherwise (the caller then
// treats every mutation as durable on return, as before).
func AsGrouped(s Storage) Grouped {
	if g, ok := s.(Grouped); ok && g.GroupCommit() {
		return g
	}
	return nil
}

// Memory is an in-memory Storage. Its zero value is not usable; call
// NewMemory.
type Memory struct {
	hs      HardState
	entries map[types.Index]types.Entry
	snap    types.Snapshot
}

// NewMemory returns an empty in-memory store.
func NewMemory() *Memory {
	return &Memory{entries: make(map[types.Index]types.Entry)}
}

// SetHardState implements Storage.
func (m *Memory) SetHardState(hs HardState) error {
	m.hs = hs
	return nil
}

// AppendEntry implements Storage.
func (m *Memory) AppendEntry(e types.Entry) error {
	m.entries[e.Index] = e.Clone()
	return nil
}

// TruncateSuffix implements Storage.
func (m *Memory) TruncateSuffix(idx types.Index) error {
	for i := range m.entries {
		if i > idx {
			delete(m.entries, i)
		}
	}
	return nil
}

// SaveSnapshot implements Storage.
func (m *Memory) SaveSnapshot(snap types.Snapshot) error {
	m.snap = snap.Clone()
	return nil
}

// TruncatePrefix implements Storage.
func (m *Memory) TruncatePrefix(idx types.Index) error {
	for i := range m.entries {
		if i <= idx {
			delete(m.entries, i)
		}
	}
	return nil
}

// Load implements Storage.
func (m *Memory) Load() (HardState, []types.Entry, error) {
	out := make([]types.Entry, 0, len(m.entries))
	for _, e := range m.entries {
		if e.Index <= m.snap.Meta.LastIndex {
			continue
		}
		out = append(out, e.Clone())
	}
	sortEntries(out)
	return m.hs, out, nil
}

// LoadSnapshot implements Storage.
func (m *Memory) LoadSnapshot() (types.Snapshot, bool, error) {
	if m.snap.IsZero() {
		return types.Snapshot{}, false, nil
	}
	return m.snap.Clone(), true, nil
}

// Close implements Storage.
func (m *Memory) Close() error { return nil }

func sortEntries(es []types.Entry) {
	// Insertion sort: entry sets are nearly sorted already and this avoids
	// importing sort for a hot path used only on recovery.
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && es[j].Index < es[j-1].Index; j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}

var _ Storage = (*Memory)(nil)
