package storage

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/hraft-io/hraft/internal/types"
)

func pid(p string, s uint64) types.ProposalID {
	return types.ProposalID{Proposer: types.NodeID(p), Seq: s}
}

func entry(idx types.Index, term types.Term, payload string) types.Entry {
	return types.Entry{
		Index: idx, Term: term, Kind: types.KindNormal,
		Approval: types.ApprovedLeader, PID: pid("p", uint64(idx)),
		Data: []byte(payload),
	}
}

// storageScenario exercises any Storage implementation identically.
func storageScenario(t *testing.T, s Storage) {
	t.Helper()
	if err := s.SetHardState(HardState{Term: 3, VotedFor: "n2"}); err != nil {
		t.Fatal(err)
	}
	for i := types.Index(1); i <= 5; i++ {
		if err := s.AppendEntry(entry(i, 1, "v1")); err != nil {
			t.Fatal(err)
		}
	}
	// Replace index 3 (overwrite) and truncate past 4.
	if err := s.AppendEntry(entry(3, 2, "v2")); err != nil {
		t.Fatal(err)
	}
	if err := s.TruncateSuffix(4); err != nil {
		t.Fatal(err)
	}
	hs, entries, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if hs.Term != 3 || hs.VotedFor != "n2" {
		t.Fatalf("hard state = %+v", hs)
	}
	if len(entries) != 4 {
		t.Fatalf("entries = %d, want 4", len(entries))
	}
	for i, e := range entries {
		if e.Index != types.Index(i+1) {
			t.Fatalf("entries unsorted: %v", entries)
		}
	}
	if string(entries[2].Data) != "v2" || entries[2].Term != 2 {
		t.Fatalf("replacement lost: %v", entries[2])
	}
}

func TestMemoryStorageScenario(t *testing.T) {
	storageScenario(t, NewMemory())
}

func TestWALScenarioAndReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "node.wal")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	storageScenario(t, w)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: state must be replayed identically.
	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	hs, entries, err := w2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if hs.Term != 3 || hs.VotedFor != "n2" || len(entries) != 4 {
		t.Fatalf("reopen: hs=%+v entries=%d", hs, len(entries))
	}
}

func TestWALTornTailRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.wal")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SetHardState(HardState{Term: 1, VotedFor: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendEntry(entry(1, 1, "keep")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a torn write: append garbage that looks like a partial
	// record.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{200, 0, 0, 0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatalf("torn tail must recover, got %v", err)
	}
	hs, entries, err := w2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if hs.Term != 1 || len(entries) != 1 || string(entries[0].Data) != "keep" {
		t.Fatalf("recovered state wrong: hs=%+v entries=%v", hs, entries)
	}
	// The torn tail must have been dropped so new appends work.
	if err := w2.AppendEntry(entry(2, 1, "after")); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	w3, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	_, entries, _ = w3.Load()
	if len(entries) != 2 {
		t.Fatalf("post-recovery append lost: %v", entries)
	}
}

// TestWALRejectsPreVersioningFormat: a log whose first record is not the
// format record was written by a build with the old entry encoding; it must
// be refused with a clear error, not misdecoded.
func TestWALRejectsPreVersioningFormat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "old.wal")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// A well-framed v1-style log starting directly with a hard-state record.
	if err := writeRecord(f, hardStateBody(HardState{Term: 3, VotedFor: "a"})); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := OpenWAL(path); err == nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("pre-versioning WAL opened: err=%v", err)
	}
}

// TestWALRejectsFutureFormatVersion: a format record with a newer version
// must be refused.
func TestWALRejectsFutureFormatVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "future.wal")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeRecord(f, []byte{recFormat, walFormatVersion + 1}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := OpenWAL(path); err == nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("future-format WAL opened: err=%v", err)
	}
}

func TestWALCorruptMiddleStopsReplayAtCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corrupt.wal")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendEntry(entry(1, 1, "one")); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendEntry(entry(2, 1, "two")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	// Flip a byte inside the second record's body.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatalf("corrupt tail record should truncate, got %v", err)
	}
	defer w2.Close()
	_, entries, _ := w2.Load()
	if len(entries) != 1 || string(entries[0].Data) != "one" {
		t.Fatalf("replay past corruption: %v", entries)
	}
}

func snap(idx types.Index, term types.Term, payload string) types.Snapshot {
	return types.Snapshot{
		Meta: types.SnapshotMeta{
			LastIndex: idx, LastTerm: term,
			Config: types.NewConfig("n1", "n2", "n3"),
		},
		Data: []byte(payload),
	}
}

// snapshotScenario exercises snapshot save + prefix compaction on any
// Storage implementation.
func snapshotScenario(t *testing.T, s Storage) {
	t.Helper()
	if err := s.SetHardState(HardState{Term: 2, VotedFor: "n1"}); err != nil {
		t.Fatal(err)
	}
	for i := types.Index(1); i <= 10; i++ {
		if err := s.AppendEntry(entry(i, 1, "v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.SaveSnapshot(snap(6, 1, "state@6")); err != nil {
		t.Fatal(err)
	}
	if err := s.TruncatePrefix(6); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendEntry(entry(11, 2, "post")); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.LoadSnapshot()
	if err != nil || !ok {
		t.Fatalf("LoadSnapshot: ok=%v err=%v", ok, err)
	}
	if got.Meta.LastIndex != 6 || string(got.Data) != "state@6" {
		t.Fatalf("snapshot = %v data=%q", got, got.Data)
	}
	_, entries, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 5 || entries[0].Index != 7 || entries[4].Index != 11 {
		t.Fatalf("post-compaction entries = %v", entries)
	}
}

func TestMemorySnapshotScenario(t *testing.T) {
	snapshotScenario(t, NewMemory())
}

func TestWALSnapshotScenarioAndReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.wal")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	snapshotScenario(t, w)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// A reopened WAL must load only the snapshot + suffix.
	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	got, ok, err := w2.LoadSnapshot()
	if err != nil || !ok || got.Meta.LastIndex != 6 || string(got.Data) != "state@6" {
		t.Fatalf("reopen snapshot: ok=%v err=%v snap=%v", ok, err, got)
	}
	if got.Meta.Config.Size() != 3 {
		t.Fatalf("snapshot config lost: %v", got.Meta.Config)
	}
	hs, entries, err := w2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if hs.Term != 2 || len(entries) != 5 || entries[0].Index != 7 {
		t.Fatalf("reopen after compaction: hs=%+v entries=%v", hs, entries)
	}
}

func TestWALTornTailAcrossCompactionBoundary(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snaptorn.wal")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	snapshotScenario(t, w) // snapshot@6, entries 7..11
	if err := w.AppendEntry(entry(12, 2, "last")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail: a partial record after the compacted log's appends.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{90, 0, 0, 0, 7, 7}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatalf("torn tail across compaction must recover, got %v", err)
	}
	defer w2.Close()
	got, ok, _ := w2.LoadSnapshot()
	if !ok || got.Meta.LastIndex != 6 {
		t.Fatalf("snapshot lost by torn-tail repair: ok=%v snap=%v", ok, got)
	}
	_, entries, _ := w2.Load()
	if len(entries) != 6 || entries[0].Index != 7 || entries[5].Index != 12 {
		t.Fatalf("suffix after torn-tail repair: %v", entries)
	}
}

func TestWALCrashBetweenSnapshotAndCompaction(t *testing.T) {
	// Snapshot saved but the process dies before TruncatePrefix: the
	// still-present prefix entries are stale, not corrupt, and must be
	// filtered on recovery.
	path := filepath.Join(t.TempDir(), "midsave.wal")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := types.Index(1); i <= 8; i++ {
		if err := w.AppendEntry(entry(i, 1, "v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.SaveSnapshot(snap(5, 1, "state@5")); err != nil {
		t.Fatal(err)
	}
	w.Close() // no TruncatePrefix
	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	_, ok, _ := w2.LoadSnapshot()
	if !ok {
		t.Fatal("snapshot not recovered")
	}
	_, entries, _ := w2.Load()
	if len(entries) != 3 || entries[0].Index != 6 {
		t.Fatalf("stale prefix not filtered: %v", entries)
	}
}

func TestWALSnapshotMarkerWithoutSidecarIsCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lost.wal")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendEntry(entry(1, 1, "v")); err != nil {
		t.Fatal(err)
	}
	if err := w.SaveSnapshot(snap(1, 1, "s")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	if err := os.Remove(snapPath(path)); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWAL(path); err == nil {
		t.Fatal("marker without sidecar must fail to open")
	}
}

func TestWALInterruptedRotationLeavesLogIntact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rot.wal")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	snapshotScenario(t, w)
	w.Close()
	// Simulate a crash mid-rotation: a partial rewrite temp file exists.
	if err := os.WriteFile(path+".rewrite", []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatalf("stale rewrite temp must be ignored, got %v", err)
	}
	defer w2.Close()
	_, entries, _ := w2.Load()
	if len(entries) != 5 {
		t.Fatalf("entries after ignored rotation temp: %v", entries)
	}
	if _, err := os.Stat(path + ".rewrite"); !os.IsNotExist(err) {
		t.Fatal("stale rewrite temp not removed")
	}
}

// TestQuickWALMatchesMemory replays random operation sequences against both
// implementations and requires identical Load results after a reopen.
func TestQuickWALMatchesMemory(t *testing.T) {
	dir := t.TempDir()
	n := 0
	f := func(seed int64) bool {
		n++
		rng := rand.New(rand.NewSource(seed))
		path := filepath.Join(dir, "wal", "q", "w", "x", "y", "z", "t", "u", "v",
			"n"+string(rune('a'+n%26))+string(rune('a'+(n/26)%26))+".wal")
		w, err := OpenWAL(path)
		if err != nil {
			t.Logf("open: %v", err)
			return false
		}
		m := NewMemory()
		var snapIdx types.Index // snapshots only move forward
		for op := 0; op < 30; op++ {
			switch rng.Intn(4) {
			case 0:
				hs := HardState{Term: types.Term(rng.Intn(100)), VotedFor: types.NodeID(string(rune('a' + rng.Intn(5))))}
				if w.SetHardState(hs) != nil || m.SetHardState(hs) != nil {
					return false
				}
			case 1:
				e := entry(types.Index(rng.Intn(10)+1), types.Term(rng.Intn(5)+1), "x")
				if w.AppendEntry(e) != nil || m.AppendEntry(e) != nil {
					return false
				}
			case 2:
				idx := types.Index(rng.Intn(10))
				if w.TruncateSuffix(idx) != nil || m.TruncateSuffix(idx) != nil {
					return false
				}
			case 3:
				idx := snapIdx + types.Index(rng.Intn(3)+1)
				snapIdx = idx
				s := snap(idx, types.Term(rng.Intn(5)+1), "s")
				if w.SaveSnapshot(s) != nil || m.SaveSnapshot(s) != nil {
					return false
				}
				if w.TruncatePrefix(idx) != nil || m.TruncatePrefix(idx) != nil {
					return false
				}
			}
		}
		if err := w.Close(); err != nil {
			return false
		}
		w2, err := OpenWAL(path)
		if err != nil {
			return false
		}
		defer w2.Close()
		whs, wes, err1 := w2.Load()
		mhs, mes, err2 := m.Load()
		if err1 != nil || err2 != nil {
			return false
		}
		if whs != mhs {
			t.Logf("hardstate: wal=%+v mem=%+v", whs, mhs)
			return false
		}
		wsn, wok, err1 := w2.LoadSnapshot()
		msn, mok, err2 := m.LoadSnapshot()
		if err1 != nil || err2 != nil || wok != mok || !reflect.DeepEqual(wsn, msn) {
			t.Logf("snapshot: wal=%v,%v mem=%v,%v", wsn, wok, msn, mok)
			return false
		}
		if len(wes) == 0 && len(mes) == 0 {
			return true
		}
		return reflect.DeepEqual(wes, mes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
