package storage

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"syscall"
	"testing"
	"testing/quick"
	"time"

	"github.com/hraft-io/hraft/internal/types"
)

func pid(p string, s uint64) types.ProposalID {
	return types.ProposalID{Proposer: types.NodeID(p), Seq: s}
}

func entry(idx types.Index, term types.Term, payload string) types.Entry {
	return types.Entry{
		Index: idx, Term: term, Kind: types.KindNormal,
		Approval: types.ApprovedLeader, PID: pid("p", uint64(idx)),
		Data: []byte(payload),
	}
}

// activeSegment returns the path of the WAL's active (highest-sequence)
// segment file; zero-padded names make lexical order numeric order.
func activeSegment(t *testing.T, dir string) string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "*.seg"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no segments in %s: %v", dir, err)
	}
	sort.Strings(names)
	return names[len(names)-1]
}

// storageScenario exercises any Storage implementation identically.
func storageScenario(t *testing.T, s Storage) {
	t.Helper()
	if err := s.SetHardState(HardState{Term: 3, VotedFor: "n2"}); err != nil {
		t.Fatal(err)
	}
	for i := types.Index(1); i <= 5; i++ {
		if err := s.AppendEntry(entry(i, 1, "v1")); err != nil {
			t.Fatal(err)
		}
	}
	// Replace index 3 (overwrite) and truncate past 4.
	if err := s.AppendEntry(entry(3, 2, "v2")); err != nil {
		t.Fatal(err)
	}
	if err := s.TruncateSuffix(4); err != nil {
		t.Fatal(err)
	}
	hs, entries, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if hs.Term != 3 || hs.VotedFor != "n2" {
		t.Fatalf("hard state = %+v", hs)
	}
	if len(entries) != 4 {
		t.Fatalf("entries = %d, want 4", len(entries))
	}
	for i, e := range entries {
		if e.Index != types.Index(i+1) {
			t.Fatalf("entries unsorted: %v", entries)
		}
	}
	if string(entries[2].Data) != "v2" || entries[2].Term != 2 {
		t.Fatalf("replacement lost: %v", entries[2])
	}
}

func TestMemoryStorageScenario(t *testing.T) {
	storageScenario(t, NewMemory())
}

func TestWALScenarioAndReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "node.wal")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	storageScenario(t, w)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: state must be replayed identically.
	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	hs, entries, err := w2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if hs.Term != 3 || hs.VotedFor != "n2" || len(entries) != 4 {
		t.Fatalf("reopen: hs=%+v entries=%d", hs, len(entries))
	}
}

func TestWALTornTailRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.wal")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SetHardState(HardState{Term: 1, VotedFor: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendEntry(entry(1, 1, "keep")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a torn write: append garbage that looks like a partial
	// record to the active segment.
	f, err := os.OpenFile(activeSegment(t, path), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{200, 0, 0, 0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatalf("torn tail must recover, got %v", err)
	}
	hs, entries, err := w2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if hs.Term != 1 || len(entries) != 1 || string(entries[0].Data) != "keep" {
		t.Fatalf("recovered state wrong: hs=%+v entries=%v", hs, entries)
	}
	// The torn tail must have been dropped so new appends work.
	if err := w2.AppendEntry(entry(2, 1, "after")); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	w3, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	_, entries, _ = w3.Load()
	if len(entries) != 2 {
		t.Fatalf("post-recovery append lost: %v", entries)
	}
}

// TestWALRejectsPreVersioningFormat: a log whose first record is not the
// format record was written by a build with the old entry encoding; it must
// be refused with a clear error, not misdecoded.
func TestWALRejectsPreVersioningFormat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "old.wal")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// A well-framed v1-style log starting directly with a hard-state record.
	if err := writeRecord(f, hardStateBody(HardState{Term: 3, VotedFor: "a"})); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := OpenWAL(path); err == nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("pre-versioning WAL opened: err=%v", err)
	}
}

// TestWALRejectsFutureFormatVersion: a format record with a newer version
// must be refused.
func TestWALRejectsFutureFormatVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "future.wal")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeRecord(f, []byte{recFormat, walFormatVersion + 1}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := OpenWAL(path); err == nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("future-format WAL opened: err=%v", err)
	}
}

func TestWALCorruptMiddleStopsReplayAtCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corrupt.wal")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendEntry(entry(1, 1, "one")); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendEntry(entry(2, 1, "two")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	// Flip a byte inside the second record's body (in the active segment).
	seg := activeSegment(t, path)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatalf("corrupt tail record should truncate, got %v", err)
	}
	defer w2.Close()
	_, entries, _ := w2.Load()
	if len(entries) != 1 || string(entries[0].Data) != "one" {
		t.Fatalf("replay past corruption: %v", entries)
	}
}

func snap(idx types.Index, term types.Term, payload string) types.Snapshot {
	return types.Snapshot{
		Meta: types.SnapshotMeta{
			LastIndex: idx, LastTerm: term,
			Config: types.NewConfig("n1", "n2", "n3"),
		},
		Data: []byte(payload),
	}
}

// snapshotScenario exercises snapshot save + prefix compaction on any
// Storage implementation.
func snapshotScenario(t *testing.T, s Storage) {
	t.Helper()
	if err := s.SetHardState(HardState{Term: 2, VotedFor: "n1"}); err != nil {
		t.Fatal(err)
	}
	for i := types.Index(1); i <= 10; i++ {
		if err := s.AppendEntry(entry(i, 1, "v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.SaveSnapshot(snap(6, 1, "state@6")); err != nil {
		t.Fatal(err)
	}
	if err := s.TruncatePrefix(6); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendEntry(entry(11, 2, "post")); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.LoadSnapshot()
	if err != nil || !ok {
		t.Fatalf("LoadSnapshot: ok=%v err=%v", ok, err)
	}
	if got.Meta.LastIndex != 6 || string(got.Data) != "state@6" {
		t.Fatalf("snapshot = %v data=%q", got, got.Data)
	}
	_, entries, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 5 || entries[0].Index != 7 || entries[4].Index != 11 {
		t.Fatalf("post-compaction entries = %v", entries)
	}
}

func TestMemorySnapshotScenario(t *testing.T) {
	snapshotScenario(t, NewMemory())
}

func TestWALSnapshotScenarioAndReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.wal")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	snapshotScenario(t, w)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// A reopened WAL must load only the snapshot + suffix.
	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	got, ok, err := w2.LoadSnapshot()
	if err != nil || !ok || got.Meta.LastIndex != 6 || string(got.Data) != "state@6" {
		t.Fatalf("reopen snapshot: ok=%v err=%v snap=%v", ok, err, got)
	}
	if got.Meta.Config.Size() != 3 {
		t.Fatalf("snapshot config lost: %v", got.Meta.Config)
	}
	hs, entries, err := w2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if hs.Term != 2 || len(entries) != 5 || entries[0].Index != 7 {
		t.Fatalf("reopen after compaction: hs=%+v entries=%v", hs, entries)
	}
}

func TestWALTornTailAcrossCompactionBoundary(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snaptorn.wal")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	snapshotScenario(t, w) // snapshot@6, entries 7..11
	if err := w.AppendEntry(entry(12, 2, "last")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail: a partial record after the compacted log's appends.
	f, err := os.OpenFile(activeSegment(t, path), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{90, 0, 0, 0, 7, 7}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatalf("torn tail across compaction must recover, got %v", err)
	}
	defer w2.Close()
	got, ok, _ := w2.LoadSnapshot()
	if !ok || got.Meta.LastIndex != 6 {
		t.Fatalf("snapshot lost by torn-tail repair: ok=%v snap=%v", ok, got)
	}
	_, entries, _ := w2.Load()
	if len(entries) != 6 || entries[0].Index != 7 || entries[5].Index != 12 {
		t.Fatalf("suffix after torn-tail repair: %v", entries)
	}
}

func TestWALCrashBetweenSnapshotAndCompaction(t *testing.T) {
	// Snapshot saved but the process dies before TruncatePrefix: the
	// still-present prefix entries are stale, not corrupt, and must be
	// filtered on recovery.
	path := filepath.Join(t.TempDir(), "midsave.wal")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := types.Index(1); i <= 8; i++ {
		if err := w.AppendEntry(entry(i, 1, "v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.SaveSnapshot(snap(5, 1, "state@5")); err != nil {
		t.Fatal(err)
	}
	w.Close() // no TruncatePrefix
	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	_, ok, _ := w2.LoadSnapshot()
	if !ok {
		t.Fatal("snapshot not recovered")
	}
	_, entries, _ := w2.Load()
	if len(entries) != 3 || entries[0].Index != 6 {
		t.Fatalf("stale prefix not filtered: %v", entries)
	}
}

func TestWALSnapshotMarkerWithoutSidecarIsCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lost.wal")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendEntry(entry(1, 1, "v")); err != nil {
		t.Fatal(err)
	}
	if err := w.SaveSnapshot(snap(1, 1, "s")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	if err := os.Remove(snapPath(path)); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWAL(path); err == nil {
		t.Fatal("marker without sidecar must fail to open")
	}
}

func TestWALInterruptedSaveLeavesLogIntact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rot.wal")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	snapshotScenario(t, w)
	w.Close()
	// Simulate crashes mid-save: partial manifest and sidecar temp files.
	for _, tmp := range []string{manifestPath(path) + ".tmp", snapPath(path) + ".tmp"} {
		if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatalf("stale save temps must be ignored, got %v", err)
	}
	defer w2.Close()
	_, entries, _ := w2.Load()
	if len(entries) != 5 {
		t.Fatalf("entries after ignored save temps: %v", entries)
	}
	for _, tmp := range []string{manifestPath(path) + ".tmp", snapPath(path) + ".tmp"} {
		if _, err := os.Stat(tmp); !os.IsNotExist(err) {
			t.Fatalf("stale temp %s not removed", tmp)
		}
	}
}

// TestQuickWALMatchesMemory replays random operation sequences against both
// implementations and requires identical Load results after a reopen.
func TestQuickWALMatchesMemory(t *testing.T) {
	dir := t.TempDir()
	n := 0
	f := func(seed int64) bool {
		n++
		rng := rand.New(rand.NewSource(seed))
		path := filepath.Join(dir, "wal", "q", "w", "x", "y", "z", "t", "u", "v",
			"n"+string(rune('a'+n%26))+string(rune('a'+(n/26)%26))+".wal")
		w, err := OpenWAL(path)
		if err != nil {
			t.Logf("open: %v", err)
			return false
		}
		m := NewMemory()
		var snapIdx types.Index // snapshots only move forward
		for op := 0; op < 30; op++ {
			switch rng.Intn(4) {
			case 0:
				hs := HardState{Term: types.Term(rng.Intn(100)), VotedFor: types.NodeID(string(rune('a' + rng.Intn(5))))}
				if w.SetHardState(hs) != nil || m.SetHardState(hs) != nil {
					return false
				}
			case 1:
				e := entry(types.Index(rng.Intn(10)+1), types.Term(rng.Intn(5)+1), "x")
				if w.AppendEntry(e) != nil || m.AppendEntry(e) != nil {
					return false
				}
			case 2:
				idx := types.Index(rng.Intn(10))
				if w.TruncateSuffix(idx) != nil || m.TruncateSuffix(idx) != nil {
					return false
				}
			case 3:
				idx := snapIdx + types.Index(rng.Intn(3)+1)
				snapIdx = idx
				s := snap(idx, types.Term(rng.Intn(5)+1), "s")
				if w.SaveSnapshot(s) != nil || m.SaveSnapshot(s) != nil {
					return false
				}
				if w.TruncatePrefix(idx) != nil || m.TruncatePrefix(idx) != nil {
					return false
				}
			}
		}
		if err := w.Close(); err != nil {
			return false
		}
		w2, err := OpenWAL(path)
		if err != nil {
			return false
		}
		defer w2.Close()
		whs, wes, err1 := w2.Load()
		mhs, mes, err2 := m.Load()
		if err1 != nil || err2 != nil {
			return false
		}
		if whs != mhs {
			t.Logf("hardstate: wal=%+v mem=%+v", whs, mhs)
			return false
		}
		wsn, wok, err1 := w2.LoadSnapshot()
		msn, mok, err2 := m.LoadSnapshot()
		if err1 != nil || err2 != nil || wok != mok || !reflect.DeepEqual(wsn, msn) {
			t.Logf("snapshot: wal=%v,%v mem=%v,%v", wsn, wok, msn, mok)
			return false
		}
		if len(wes) == 0 && len(mes) == 0 {
			return true
		}
		return reflect.DeepEqual(wes, mes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// smallSegOpts makes segments roll quickly so tests exercise multi-segment
// layouts with few appends.
func smallSegOpts() WALOptions { return WALOptions{SegmentBytes: 256} }

// TestWALCompactionDoesNotRewriteRetainedSegments is the O(dropped) claim:
// dropping a prefix unlinks whole sealed segments and never touches (let
// alone rewrites) the retained ones — their inode and mtime are unchanged.
func TestWALCompactionDoesNotRewriteRetainedSegments(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg.wal")
	w, err := OpenWALOptions(path, smallSegOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := types.Index(1); i <= 40; i++ {
		if err := w.AppendEntry(entry(i, 1, "payload-payload-payload")); err != nil {
			t.Fatal(err)
		}
	}
	sealed, _ := w.SegmentCount()
	if sealed < 3 {
		t.Fatalf("want >=3 sealed segments, got %d", sealed)
	}

	man, ok, err := readManifest(path)
	if err != nil || !ok {
		t.Fatalf("manifest: ok=%v err=%v", ok, err)
	}
	// Compact up to the first sealed segment's last index: exactly that
	// segment is droppable, everything after must be byte-identical.
	bound := man.Segments[0].Last
	type fileID struct {
		ino   uint64
		mtime time.Time
		size  int64
	}
	before := map[uint64]fileID{}
	for _, s := range man.Segments[1:] {
		fi, err := os.Stat(filepath.Join(path, segName(s.Seq)))
		if err != nil {
			t.Fatal(err)
		}
		st := fi.Sys().(*syscall.Stat_t)
		before[s.Seq] = fileID{ino: st.Ino, mtime: fi.ModTime(), size: fi.Size()}
	}

	if err := w.SaveSnapshot(snap(bound, 1, "s")); err != nil {
		t.Fatal(err)
	}
	if err := w.TruncatePrefix(bound); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(path, segName(man.Segments[0].Seq))); !os.IsNotExist(err) {
		t.Fatalf("dropped segment still on disk: %v", err)
	}
	for seq, id := range before {
		fi, err := os.Stat(filepath.Join(path, segName(seq)))
		if err != nil {
			t.Fatalf("retained segment %d gone: %v", seq, err)
		}
		st := fi.Sys().(*syscall.Stat_t)
		if st.Ino != id.ino || !fi.ModTime().Equal(id.mtime) || fi.Size() != id.size {
			t.Fatalf("retained segment %d was rewritten: ino %d->%d mtime %v->%v size %d->%d",
				seq, id.ino, st.Ino, id.mtime, fi.ModTime(), id.size, fi.Size())
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWALOptions(path, smallSegOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	_, entries, err := w2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != int(40-bound) || entries[0].Index != bound+1 {
		t.Fatalf("post-compaction reopen: %d entries, first %v", len(entries), entries[0].Index)
	}
}

// TestWALCrashBetweenSealAndManifest: the sealed segment exists on disk but
// the manifest update never landed. Recovery must adopt it (and the newer
// active segment) and lose nothing.
func TestWALCrashBetweenSealAndManifest(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seal.wal")
	w, err := OpenWALOptions(path, smallSegOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := types.Index(1); i <= 30; i++ {
		if err := w.AppendEntry(entry(i, 1, "payload-payload-payload")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	man, ok, err := readManifest(path)
	if err != nil || !ok || len(man.Segments) < 2 {
		t.Fatalf("need >=2 sealed segments: ok=%v err=%v segs=%d", ok, err, len(man.Segments))
	}
	// Rewind the manifest one seal, as if the crash hit after the new
	// active segment was created but before the manifest rewrite.
	man.Segments = man.Segments[:len(man.Segments)-1]
	data, _ := json.Marshal(man)
	if err := os.WriteFile(manifestPath(path), data, 0o644); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWALOptions(path, smallSegOpts())
	if err != nil {
		t.Fatalf("recovery from pre-manifest crash: %v", err)
	}
	defer w2.Close()
	_, entries, err := w2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 30 {
		t.Fatalf("entries lost across seal crash: %d", len(entries))
	}
	// The adopted segment must have been re-listed.
	man2, _, err := readManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(man2.Segments) < len(man.Segments)+1 {
		t.Fatalf("adopted segment not resealed: %d -> %d", len(man.Segments), len(man2.Segments))
	}
}

// TestWALCompactionCrashBeforeUnlink: the manifest already dropped the
// segments but the files survive (compaction racing a crash, e.g. during
// snapshot install). Recovery garbage-collects the orphans below the floor.
func TestWALCompactionCrashBeforeUnlink(t *testing.T) {
	path := filepath.Join(t.TempDir(), "orph.wal")
	w, err := OpenWALOptions(path, smallSegOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := types.Index(1); i <= 30; i++ {
		if err := w.AppendEntry(entry(i, 1, "payload-payload-payload")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	man, ok, err := readManifest(path)
	if err != nil || !ok || len(man.Segments) < 2 {
		t.Fatalf("need >=2 sealed segments: ok=%v err=%v segs=%d", ok, err, len(man.Segments))
	}
	// Snapshot covering the first segment, then hand-write the
	// post-compaction manifest while leaving the file on disk.
	bound := man.Segments[0].Last
	if err := writeSnapshotFile(snapPath(path), snap(bound, 1, "s")); err != nil {
		t.Fatal(err)
	}
	orphan := man.Segments[0].Seq
	man.Segments = man.Segments[1:]
	man.Floor = man.Segments[0].Seq
	data, _ := json.Marshal(man)
	if err := os.WriteFile(manifestPath(path), data, 0o644); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWALOptions(path, smallSegOpts())
	if err != nil {
		t.Fatalf("recovery with orphan segment: %v", err)
	}
	defer w2.Close()
	if _, err := os.Stat(filepath.Join(path, segName(orphan))); !os.IsNotExist(err) {
		t.Fatal("orphan segment below floor not collected")
	}
	_, entries, err := w2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != int(30-bound) || entries[0].Index != bound+1 {
		t.Fatalf("recovered entries: %d, first %v", len(entries), entries[0].Index)
	}
}

// TestWALGroupCommitHorizon: acknowledged-but-unsynced mutations sit above
// the durable horizon until Sync; the OnDurable callback reports progress.
func TestWALGroupCommitHorizon(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gc.wal")
	w, err := OpenWALOptions(path, WALOptions{GroupCommit: true, SyncWindow: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	var notified uint64
	w.OnDurable(func(lsn uint64) { notified = lsn })
	if err := w.SetHardState(HardState{Term: 1, VotedFor: "a"}); err != nil {
		t.Fatal(err)
	}
	for i := types.Index(1); i <= 3; i++ {
		if err := w.AppendEntry(entry(i, 1, "v")); err != nil {
			t.Fatal(err)
		}
	}
	if w.LastLSN() != 4 {
		t.Fatalf("LastLSN = %d, want 4", w.LastLSN())
	}
	if d := w.DurableLSN(); d == w.LastLSN() {
		t.Fatalf("durable horizon %d caught up without a sync (window is 1h)", d)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if w.DurableLSN() != 4 || notified != 4 {
		t.Fatalf("after Sync: durable=%d notified=%d", w.DurableLSN(), notified)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	hs, entries, err := w2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if hs.Term != 1 || len(entries) != 3 {
		t.Fatalf("grouped state lost: hs=%+v entries=%d", hs, len(entries))
	}
}

// TestWALGroupCommitScenarios: the full Storage contract holds under group
// commit (eager flushing), including reopen by a synchronous WAL.
func TestWALGroupCommitScenarios(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gcs.wal")
	w, err := OpenWALOptions(path, WALOptions{GroupCommit: true, SyncWindow: -1})
	if err != nil {
		t.Fatal(err)
	}
	storageScenario(t, w)
	snapshotScenario(t, w)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	got, ok, err := w2.LoadSnapshot()
	if err != nil || !ok || got.Meta.LastIndex != 6 {
		t.Fatalf("reopen snapshot: ok=%v err=%v snap=%v", ok, err, got)
	}
	_, entries, err := w2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 5 || entries[0].Index != 7 {
		t.Fatalf("reopen entries: %v", entries)
	}
}

// TestGroupedMemoryCrashDropsUnsynced: the harness storage model loses
// exactly the unsynced suffix on a crash.
func TestGroupedMemoryCrashDropsUnsynced(t *testing.T) {
	m := NewMemory()
	g := NewGroupedMemory(m)
	if err := g.AppendEntry(entry(1, 1, "durable")); err != nil {
		t.Fatal(err)
	}
	if err := g.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := g.AppendEntry(entry(2, 1, "lost")); err != nil {
		t.Fatal(err)
	}
	if g.LastLSN() != 2 || g.DurableLSN() != 1 {
		t.Fatalf("lsns: last=%d durable=%d", g.LastLSN(), g.DurableLSN())
	}
	g.Crash()
	if g.LastLSN() != 1 {
		t.Fatalf("crash did not rewind accepted horizon: %d", g.LastLSN())
	}
	_, entries, err := g.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || string(entries[0].Data) != "durable" {
		t.Fatalf("post-crash state: %v", entries)
	}
}

// writeOldSingleFileWAL lays down a pre-segment (single-file) WAL at path.
// encode renders one entry body at that format's entry layout.
func writeOldSingleFileWAL(t *testing.T, path string, ver byte, hs HardState, entries []types.Entry, encode func(types.Entry) []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := writeRecord(f, []byte{recFormat, ver}); err != nil {
		t.Fatal(err)
	}
	if err := writeRecord(f, hardStateBody(hs)); err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if err := writeRecord(f, append([]byte{recEntry}, encode(e)...)); err != nil {
			t.Fatal(err)
		}
	}
}

// encodeEntryV2 renders the pre-SessionAck entry layout that format-2
// single-file WALs recorded.
func encodeEntryV2(e types.Entry) []byte {
	var b []byte
	b = binary.AppendUvarint(b, uint64(e.Index))
	b = binary.AppendUvarint(b, uint64(e.Term))
	b = append(b, byte(e.Kind), byte(e.Approval))
	b = binary.AppendUvarint(b, uint64(len(e.PID.Proposer)))
	b = append(b, e.PID.Proposer...)
	b = binary.AppendUvarint(b, e.PID.Seq)
	b = binary.AppendUvarint(b, uint64(e.Session))
	b = binary.AppendUvarint(b, e.SessionSeq)
	b = binary.AppendUvarint(b, uint64(len(e.Data)))
	b = append(b, e.Data...)
	b = append(b, 0) // no config
	return b
}

func testWALMigration(t *testing.T, ver byte, encode func(types.Entry) []byte) {
	path := filepath.Join(t.TempDir(), "old.wal")
	es := []types.Entry{entry(1, 1, "one"), entry(2, 1, "two"), entry(3, 2, "three")}
	writeOldSingleFileWAL(t, path, ver, HardState{Term: 2, VotedFor: "n2"}, es, encode)
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatalf("migration open: %v", err)
	}
	hs, entries, err := w.Load()
	if err != nil {
		t.Fatal(err)
	}
	if hs.Term != 2 || hs.VotedFor != "n2" {
		t.Fatalf("migrated hard state: %+v", hs)
	}
	if len(entries) != 3 || string(entries[2].Data) != "three" || entries[2].Term != 2 {
		t.Fatalf("migrated entries: %v", entries)
	}
	// The WAL is now a directory; the old artifacts are gone; appends work.
	fi, err := os.Stat(path)
	if err != nil || !fi.IsDir() {
		t.Fatalf("migrated WAL not a directory: %v %v", fi, err)
	}
	for _, leftover := range []string{path + ".old", path + ".snap", path + ".migrating"} {
		if _, err := os.Stat(leftover); !os.IsNotExist(err) {
			t.Fatalf("migration leftover %s", leftover)
		}
	}
	if err := w.AppendEntry(entry(4, 2, "post")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	_, entries, _ = w2.Load()
	if len(entries) != 4 {
		t.Fatalf("post-migration reopen: %v", entries)
	}
}

func TestWALMigratesV3SingleFile(t *testing.T) {
	testWALMigration(t, 3, func(e types.Entry) []byte { return types.AppendEntryTo(nil, e) })
}

func TestWALMigratesV2SingleFile(t *testing.T) {
	testWALMigration(t, 2, encodeEntryV2)
}

// TestWALMigrationWithSnapshotSidecar: the old sidecar moves into the
// directory and stale prefix entries are dropped during migration.
func TestWALMigrationWithSnapshotSidecar(t *testing.T) {
	path := filepath.Join(t.TempDir(), "olds.wal")
	es := []types.Entry{entry(1, 1, "stale"), entry(2, 1, "stale"), entry(3, 2, "live")}
	writeOldSingleFileWAL(t, path, 3, HardState{Term: 2, VotedFor: "n1"}, es,
		func(e types.Entry) []byte { return types.AppendEntryTo(nil, e) })
	if err := writeSnapshotFile(path+".snap", snap(2, 1, "state@2")); err != nil {
		t.Fatal(err)
	}
	// Old layout: the marker record follows the sidecar write.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	marker := types.Snapshot{Meta: snap(2, 1, "").Meta}
	if err := writeRecord(f, append([]byte{recSnapshot}, types.EncodeSnapshot(marker)...)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatalf("migration with snapshot: %v", err)
	}
	defer w.Close()
	got, ok, err := w.LoadSnapshot()
	if err != nil || !ok || got.Meta.LastIndex != 2 || string(got.Data) != "state@2" {
		t.Fatalf("migrated snapshot: ok=%v err=%v %v", ok, err, got)
	}
	_, entries, _ := w.Load()
	if len(entries) != 1 || entries[0].Index != 3 {
		t.Fatalf("stale prefix survived migration: %v", entries)
	}
	if _, err := os.Stat(path + ".snap"); !os.IsNotExist(err) {
		t.Fatal("old sidecar not removed")
	}
}

// TestWALMigrationCrashPoints drives recovery through each interruption
// window of the rename dance.
func TestWALMigrationCrashPoints(t *testing.T) {
	build := func(t *testing.T) (dir, path string) {
		dir = t.TempDir()
		path = filepath.Join(dir, "node.wal")
		writeOldSingleFileWAL(t, path, 3, HardState{Term: 1, VotedFor: "a"},
			[]types.Entry{entry(1, 1, "v")},
			func(e types.Entry) []byte { return types.AppendEntryTo(nil, e) })
		return dir, path
	}
	check := func(t *testing.T, path string) {
		t.Helper()
		w, err := OpenWAL(path)
		if err != nil {
			t.Fatalf("crash-point recovery: %v", err)
		}
		defer w.Close()
		hs, entries, err := w.Load()
		if err != nil || hs.Term != 1 || len(entries) != 1 {
			t.Fatalf("recovered state: hs=%+v entries=%v err=%v", hs, entries, err)
		}
		for _, leftover := range []string{path + ".old", path + ".migrating"} {
			if _, err := os.Stat(leftover); !os.IsNotExist(err) {
				t.Fatalf("leftover %s", leftover)
			}
		}
	}

	t.Run("partial-build", func(t *testing.T) {
		_, path := build(t)
		// Crash mid-build: a junk .migrating directory next to the intact
		// old file. The build must restart from scratch.
		if err := os.MkdirAll(path+".migrating", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(path+".migrating", "00000001.seg"), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
		check(t, path)
	})

	t.Run("between-renames", func(t *testing.T) {
		_, path := build(t)
		// Run the build for real, then freeze the state between the two
		// renames: original stashed at .old, built dir still at .migrating.
		hs, entries, snap, haveSnap, err := replaySingleFile(path, path+".snap")
		if err != nil {
			t.Fatal(err)
		}
		if err := buildMigrationDir(path+".migrating", hs, entries, snap, haveSnap); err != nil {
			t.Fatal(err)
		}
		if err := os.Rename(path, path+".old"); err != nil {
			t.Fatal(err)
		}
		check(t, path)
	})

	t.Run("before-cleanup", func(t *testing.T) {
		_, path := build(t)
		hs, entries, snap, haveSnap, err := replaySingleFile(path, path+".snap")
		if err != nil {
			t.Fatal(err)
		}
		if err := buildMigrationDir(path+".migrating", hs, entries, snap, haveSnap); err != nil {
			t.Fatal(err)
		}
		if err := os.Rename(path, path+".old"); err != nil {
			t.Fatal(err)
		}
		if err := os.Rename(path+".migrating", path); err != nil {
			t.Fatal(err)
		}
		check(t, path)
	})
}
