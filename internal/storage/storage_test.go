package storage

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/hraft-io/hraft/internal/types"
)

func pid(p string, s uint64) types.ProposalID {
	return types.ProposalID{Proposer: types.NodeID(p), Seq: s}
}

func entry(idx types.Index, term types.Term, payload string) types.Entry {
	return types.Entry{
		Index: idx, Term: term, Kind: types.KindNormal,
		Approval: types.ApprovedLeader, PID: pid("p", uint64(idx)),
		Data: []byte(payload),
	}
}

// storageScenario exercises any Storage implementation identically.
func storageScenario(t *testing.T, s Storage) {
	t.Helper()
	if err := s.SetHardState(HardState{Term: 3, VotedFor: "n2"}); err != nil {
		t.Fatal(err)
	}
	for i := types.Index(1); i <= 5; i++ {
		if err := s.AppendEntry(entry(i, 1, "v1")); err != nil {
			t.Fatal(err)
		}
	}
	// Replace index 3 (overwrite) and truncate past 4.
	if err := s.AppendEntry(entry(3, 2, "v2")); err != nil {
		t.Fatal(err)
	}
	if err := s.TruncateSuffix(4); err != nil {
		t.Fatal(err)
	}
	hs, entries, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if hs.Term != 3 || hs.VotedFor != "n2" {
		t.Fatalf("hard state = %+v", hs)
	}
	if len(entries) != 4 {
		t.Fatalf("entries = %d, want 4", len(entries))
	}
	for i, e := range entries {
		if e.Index != types.Index(i+1) {
			t.Fatalf("entries unsorted: %v", entries)
		}
	}
	if string(entries[2].Data) != "v2" || entries[2].Term != 2 {
		t.Fatalf("replacement lost: %v", entries[2])
	}
}

func TestMemoryStorageScenario(t *testing.T) {
	storageScenario(t, NewMemory())
}

func TestWALScenarioAndReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "node.wal")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	storageScenario(t, w)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: state must be replayed identically.
	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	hs, entries, err := w2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if hs.Term != 3 || hs.VotedFor != "n2" || len(entries) != 4 {
		t.Fatalf("reopen: hs=%+v entries=%d", hs, len(entries))
	}
}

func TestWALTornTailRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.wal")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SetHardState(HardState{Term: 1, VotedFor: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendEntry(entry(1, 1, "keep")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a torn write: append garbage that looks like a partial
	// record.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{200, 0, 0, 0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatalf("torn tail must recover, got %v", err)
	}
	hs, entries, err := w2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if hs.Term != 1 || len(entries) != 1 || string(entries[0].Data) != "keep" {
		t.Fatalf("recovered state wrong: hs=%+v entries=%v", hs, entries)
	}
	// The torn tail must have been dropped so new appends work.
	if err := w2.AppendEntry(entry(2, 1, "after")); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	w3, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	_, entries, _ = w3.Load()
	if len(entries) != 2 {
		t.Fatalf("post-recovery append lost: %v", entries)
	}
}

func TestWALCorruptMiddleStopsReplayAtCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corrupt.wal")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendEntry(entry(1, 1, "one")); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendEntry(entry(2, 1, "two")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	// Flip a byte inside the second record's body.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatalf("corrupt tail record should truncate, got %v", err)
	}
	defer w2.Close()
	_, entries, _ := w2.Load()
	if len(entries) != 1 || string(entries[0].Data) != "one" {
		t.Fatalf("replay past corruption: %v", entries)
	}
}

// TestQuickWALMatchesMemory replays random operation sequences against both
// implementations and requires identical Load results after a reopen.
func TestQuickWALMatchesMemory(t *testing.T) {
	dir := t.TempDir()
	n := 0
	f := func(seed int64) bool {
		n++
		rng := rand.New(rand.NewSource(seed))
		path := filepath.Join(dir, "wal", "q", "w", "x", "y", "z", "t", "u", "v",
			"n"+string(rune('a'+n%26))+string(rune('a'+(n/26)%26))+".wal")
		w, err := OpenWAL(path)
		if err != nil {
			t.Logf("open: %v", err)
			return false
		}
		m := NewMemory()
		for op := 0; op < 30; op++ {
			switch rng.Intn(3) {
			case 0:
				hs := HardState{Term: types.Term(rng.Intn(100)), VotedFor: types.NodeID(string(rune('a' + rng.Intn(5))))}
				if w.SetHardState(hs) != nil || m.SetHardState(hs) != nil {
					return false
				}
			case 1:
				e := entry(types.Index(rng.Intn(10)+1), types.Term(rng.Intn(5)+1), "x")
				if w.AppendEntry(e) != nil || m.AppendEntry(e) != nil {
					return false
				}
			case 2:
				idx := types.Index(rng.Intn(10))
				if w.TruncateSuffix(idx) != nil || m.TruncateSuffix(idx) != nil {
					return false
				}
			}
		}
		if err := w.Close(); err != nil {
			return false
		}
		w2, err := OpenWAL(path)
		if err != nil {
			return false
		}
		defer w2.Close()
		whs, wes, err1 := w2.Load()
		mhs, mes, err2 := m.Load()
		if err1 != nil || err2 != nil {
			return false
		}
		if whs != mhs {
			t.Logf("hardstate: wal=%+v mem=%+v", whs, mhs)
			return false
		}
		if len(wes) == 0 && len(mes) == 0 {
			return true
		}
		return reflect.DeepEqual(wes, mes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
