package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"github.com/hraft-io/hraft/internal/types"
)

// WAL record framing:
//
//	len(u32 LE) | crc32c(u32 LE, over kind+payload) | kind(1) | payload
//
// Records are appended and fsynced. On open, the tail is scanned; a short or
// corrupt final record (torn write) is truncated away, everything before it
// is replayed.
//
// Snapshots live in a sidecar file (path + ".snap") with the same
// len|crc framing around an encoded types.Snapshot. The sidecar is written
// to a temporary file, fsynced and renamed into place, so it is atomically
// either the old or the new snapshot. After the sidecar lands, a
// recSnapshot marker carrying the snapshot metadata is appended to the log;
// on recovery the sidecar is authoritative (it may be one save ahead of the
// marker if the process died between the rename and the marker append), but
// a marker without a loadable sidecar means the snapshot — and with it the
// compacted prefix — is lost, which is reported as corruption.
//
// Compaction (TruncatePrefix) rotates the log: the hard state, the snapshot
// marker and every entry above the boundary are rewritten into a temporary
// file that atomically replaces the log. A crash mid-rotation leaves the
// original log untouched.
const (
	recHardState byte = 1
	recEntry     byte = 2
	recTruncate  byte = 3
	recSnapshot  byte = 4
	// recFormat is the first record of every log file and carries the
	// format version, so a WAL written with an older entry encoding is
	// rejected with a clear error instead of a misleading decode failure.
	recFormat byte = 5
)

// walFormatVersion is the current on-disk format: 2 added the session
// fields to the entry encoding (and the format record itself — WALs
// without one predate versioning and cannot be read by this build); 3
// added the session-ack field to the entry encoding.
const walFormatVersion = 3

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a WAL whose non-tail contents fail validation.
var ErrCorrupt = errors.New("storage: corrupt wal")

// WAL is a file-backed Storage. All mutations are appended to a single log
// file and fsynced before returning; snapshots go to a sidecar file.
type WAL struct {
	f    *os.File
	path string
	// replayed state, kept current so Load never re-reads the file.
	hs      HardState
	entries map[types.Index]types.Entry
	// snap is the recovery-base snapshot (zero if none); snapMeta tracks
	// the latest recSnapshot marker seen during replay.
	snap     types.Snapshot
	snapMeta types.SnapshotMeta
}

// snapPath returns the sidecar path for a WAL path.
func snapPath(path string) string { return path + ".snap" }

// OpenWAL opens (or creates) a WAL at path, recovering existing state. A
// torn final record is repaired by truncation; stale temporary files from an
// interrupted snapshot save or compaction are removed.
func OpenWAL(path string) (*WAL, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("storage: create wal dir: %w", err)
	}
	// A crash can leave partially written temporaries; they are never
	// referenced, so drop them.
	_ = os.Remove(path + ".rewrite")
	_ = os.Remove(snapPath(path) + ".tmp")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open wal: %w", err)
	}
	w := &WAL{f: f, path: path, entries: make(map[types.Index]types.Entry)}
	if err := w.replay(); err != nil {
		f.Close()
		return nil, err
	}
	if err := w.loadSidecar(); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

func (w *WAL) replay() error {
	data, err := io.ReadAll(w.f)
	if err != nil {
		return fmt.Errorf("storage: read wal: %w", err)
	}
	off := 0
	valid := 0
	first := true
	for {
		if len(data)-off < 8 {
			break // clean end or torn length/crc header
		}
		n := binary.LittleEndian.Uint32(data[off:])
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if n == 0 || int(n) > len(data)-off-8 {
			break // torn record
		}
		body := data[off+8 : off+8+int(n)]
		if crc32.Checksum(body, crcTable) != sum {
			break // torn/corrupt record; stop replay here
		}
		if first {
			if len(body) == 0 || body[0] != recFormat {
				return fmt.Errorf("%w: no format record — written by an older incompatible version; remove the WAL (and its .snap sidecar) or migrate it", ErrCorrupt)
			}
			first = false
		}
		if err := w.apply(body); err != nil {
			return err
		}
		off += 8 + int(n)
		valid = off
	}
	if valid != len(data) {
		// Drop the torn tail so future appends start from a clean frame.
		if err := w.f.Truncate(int64(valid)); err != nil {
			return fmt.Errorf("storage: truncate torn wal tail: %w", err)
		}
	}
	if _, err := w.f.Seek(int64(valid), io.SeekStart); err != nil {
		return fmt.Errorf("storage: seek wal: %w", err)
	}
	if valid == 0 {
		// Fresh (or fully torn-away) log: stamp the format before any data.
		if err := w.appendRecord(formatBody()); err != nil {
			return err
		}
	}
	return nil
}

// formatBody builds the version record every log file starts with.
func formatBody() []byte {
	return []byte{recFormat, walFormatVersion}
}

// loadSidecar resolves the recovery-base snapshot after replay. The sidecar
// wins over the marker (it may be one save ahead); a marker without a
// loadable sidecar means the compacted prefix is unrecoverable.
func (w *WAL) loadSidecar() error {
	snap, ok, err := readSnapshotFile(snapPath(w.path))
	if err != nil {
		return err
	}
	if !ok {
		if w.snapMeta.LastIndex != 0 {
			return fmt.Errorf("%w: snapshot marker at %d but no sidecar",
				ErrCorrupt, w.snapMeta.LastIndex)
		}
		return nil
	}
	if snap.Meta.LastIndex < w.snapMeta.LastIndex {
		return fmt.Errorf("%w: sidecar snapshot %d older than marker %d",
			ErrCorrupt, snap.Meta.LastIndex, w.snapMeta.LastIndex)
	}
	w.snap = snap
	// Entries covered by the snapshot may survive in the log when the
	// process died between the snapshot save and the compaction; they are
	// stale, not corrupt.
	for i := range w.entries {
		if i <= snap.Meta.LastIndex {
			delete(w.entries, i)
		}
	}
	return nil
}

// readSnapshotFile reads a framed snapshot file; ok=false when absent. A
// file that exists but fails validation is corrupt (sidecar writes are
// atomic; no torn-tail repair applies).
func readSnapshotFile(path string) (types.Snapshot, bool, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return types.Snapshot{}, false, nil
	}
	if err != nil {
		return types.Snapshot{}, false, fmt.Errorf("storage: read snapshot: %w", err)
	}
	if len(data) < 8 {
		return types.Snapshot{}, false, fmt.Errorf("%w: short snapshot file", ErrCorrupt)
	}
	n := binary.LittleEndian.Uint32(data)
	sum := binary.LittleEndian.Uint32(data[4:])
	if int(n) != len(data)-8 || crc32.Checksum(data[8:], crcTable) != sum {
		return types.Snapshot{}, false, fmt.Errorf("%w: snapshot checksum mismatch", ErrCorrupt)
	}
	snap, err := types.DecodeSnapshot(data[8:])
	if err != nil {
		return types.Snapshot{}, false, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return snap, true, nil
}

func (w *WAL) apply(body []byte) error {
	if len(body) == 0 {
		return ErrCorrupt
	}
	switch body[0] {
	case recFormat:
		if len(body) != 2 {
			return fmt.Errorf("%w: malformed format record", ErrCorrupt)
		}
		if body[1] != walFormatVersion {
			return fmt.Errorf("%w: format version %d, this build reads %d; remove the WAL (and its .snap sidecar) or migrate it",
				ErrCorrupt, body[1], walFormatVersion)
		}
		return nil
	case recHardState:
		r := body[1:]
		term, n := binary.Uvarint(r)
		if n <= 0 {
			return ErrCorrupt
		}
		w.hs = HardState{Term: types.Term(term), VotedFor: types.NodeID(r[n:])}
		return nil
	case recEntry:
		e, err := types.DecodeEntry(body[1:])
		if err != nil {
			return fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		w.entries[e.Index] = e
		return nil
	case recTruncate:
		idx, n := binary.Uvarint(body[1:])
		if n <= 0 {
			return ErrCorrupt
		}
		for i := range w.entries {
			if i > types.Index(idx) {
				delete(w.entries, i)
			}
		}
		return nil
	case recSnapshot:
		snap, err := types.DecodeSnapshot(body[1:])
		if err != nil {
			return fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		if snap.Meta.LastIndex >= w.snapMeta.LastIndex {
			w.snapMeta = snap.Meta
		}
		return nil
	default:
		return fmt.Errorf("%w: unknown record kind %d", ErrCorrupt, body[0])
	}
}

func (w *WAL) appendRecord(body []byte) error {
	if err := writeRecord(w.f, body); err != nil {
		return fmt.Errorf("storage: append wal: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("storage: sync wal: %w", err)
	}
	return nil
}

// writeRecord frames and writes one record without syncing.
func writeRecord(f *os.File, body []byte) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(body, crcTable))
	if _, err := f.Write(hdr[:]); err != nil {
		return err
	}
	_, err := f.Write(body)
	return err
}

// syncDir fsyncs the directory containing path so renames are durable.
func syncDir(path string) error {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// SetHardState implements Storage.
func (w *WAL) SetHardState(hs HardState) error {
	if err := w.appendRecord(hardStateBody(hs)); err != nil {
		return err
	}
	w.hs = hs
	return nil
}

func hardStateBody(hs HardState) []byte {
	body := make([]byte, 0, 16+len(hs.VotedFor))
	body = append(body, recHardState)
	body = binary.AppendUvarint(body, uint64(hs.Term))
	body = append(body, hs.VotedFor...)
	return body
}

// AppendEntry implements Storage.
func (w *WAL) AppendEntry(e types.Entry) error {
	if err := w.appendRecord(entryBody(e)); err != nil {
		return err
	}
	w.entries[e.Index] = e.Clone()
	return nil
}

func entryBody(e types.Entry) []byte {
	enc := types.EncodeEntry(e)
	body := make([]byte, 0, 1+len(enc))
	body = append(body, recEntry)
	body = append(body, enc...)
	return body
}

// TruncateSuffix implements Storage.
func (w *WAL) TruncateSuffix(idx types.Index) error {
	body := make([]byte, 0, 10)
	body = append(body, recTruncate)
	body = binary.AppendUvarint(body, uint64(idx))
	if err := w.appendRecord(body); err != nil {
		return err
	}
	for i := range w.entries {
		if i > idx {
			delete(w.entries, i)
		}
	}
	return nil
}

// SaveSnapshot implements Storage: the snapshot is written atomically to
// the sidecar file, then marked in the log so rotation and recovery know a
// snapshot is the recovery base.
func (w *WAL) SaveSnapshot(snap types.Snapshot) error {
	if snap.IsZero() {
		return fmt.Errorf("storage: save empty snapshot")
	}
	side := snapPath(w.path)
	tmp := side + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("storage: create snapshot tmp: %w", err)
	}
	enc := types.EncodeSnapshot(snap)
	werr := writeRecord(f, enc)
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: write snapshot: %w", werr)
	}
	if err := os.Rename(tmp, side); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: install snapshot: %w", err)
	}
	if err := syncDir(side); err != nil {
		return fmt.Errorf("storage: sync snapshot dir: %w", err)
	}
	// Marker: meta only (no state bytes) — the sidecar holds the data.
	marker := types.Snapshot{Meta: snap.Meta}
	body := append([]byte{recSnapshot}, types.EncodeSnapshot(marker)...)
	if err := w.appendRecord(body); err != nil {
		return err
	}
	w.snap = snap.Clone()
	w.snapMeta = snap.Meta
	return nil
}

// TruncatePrefix implements Storage by rotating the log: hard state, the
// snapshot marker and all entries above idx are rewritten into a fresh file
// that atomically replaces the old log. Torn-write safe: a crash before the
// rename leaves the original log intact.
func (w *WAL) TruncatePrefix(idx types.Index) error {
	for i := range w.entries {
		if i <= idx {
			delete(w.entries, i)
		}
	}
	tmp := w.path + ".rewrite"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("storage: create rewrite: %w", err)
	}
	werr := writeRecord(f, formatBody())
	if werr == nil {
		werr = writeRecord(f, hardStateBody(w.hs))
	}
	if werr == nil && !w.snap.IsZero() {
		marker := types.Snapshot{Meta: w.snap.Meta}
		werr = writeRecord(f, append([]byte{recSnapshot}, types.EncodeSnapshot(marker)...))
	}
	if werr == nil {
		out := make([]types.Entry, 0, len(w.entries))
		for _, e := range w.entries {
			out = append(out, e)
		}
		sortEntries(out)
		for _, e := range out {
			if werr = writeRecord(f, entryBody(e)); werr != nil {
				break
			}
		}
	}
	if werr == nil {
		werr = f.Sync()
	}
	if werr != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("storage: rewrite wal: %w", werr)
	}
	if err := os.Rename(tmp, w.path); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("storage: rotate wal: %w", err)
	}
	if err := syncDir(w.path); err != nil {
		f.Close()
		return fmt.Errorf("storage: sync wal dir: %w", err)
	}
	// The new file (already open) replaces the old handle; appends continue
	// at its end.
	old := w.f
	w.f = f
	old.Close()
	if _, err := w.f.Seek(0, io.SeekEnd); err != nil {
		return fmt.Errorf("storage: seek rotated wal: %w", err)
	}
	return nil
}

// Load implements Storage.
func (w *WAL) Load() (HardState, []types.Entry, error) {
	out := make([]types.Entry, 0, len(w.entries))
	for _, e := range w.entries {
		if e.Index <= w.snap.Meta.LastIndex {
			continue
		}
		out = append(out, e.Clone())
	}
	sortEntries(out)
	return w.hs, out, nil
}

// LoadSnapshot implements Storage.
func (w *WAL) LoadSnapshot() (types.Snapshot, bool, error) {
	if w.snap.IsZero() {
		return types.Snapshot{}, false, nil
	}
	return w.snap.Clone(), true, nil
}

// Close implements Storage.
func (w *WAL) Close() error {
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return fmt.Errorf("storage: close wal: %w", err)
	}
	return w.f.Close()
}

var _ Storage = (*WAL)(nil)
