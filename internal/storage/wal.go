package storage

import (
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"github.com/hraft-io/hraft/internal/types"
)

// WAL layout (format version 4): a directory of fixed-size segments plus a
// manifest and a snapshot sidecar.
//
//	<path>/
//	  MANIFEST        sealed-segment index (JSON, atomically replaced)
//	  00000001.seg    sealed segment
//	  00000002.seg    sealed segment
//	  00000003.seg    active segment (not listed in the manifest)
//	  snap            snapshot sidecar (atomically replaced)
//
// Record framing inside a segment is unchanged from the single-file format:
//
//	len(u32 LE) | crc32c(u32 LE, over kind+payload) | kind(1) | payload
//
// Every segment starts with a format record followed by the hard state and
// snapshot marker current at its creation, so any suffix of segments is
// self-contained: recovery replays the retained segments in order and never
// needs a deleted predecessor for hard state or snapshot position.
//
// Sealing: when the active segment exceeds SegmentBytes it is fsynced, a
// fresh active segment (with bootstrap records) is created and fsynced, and
// only then is the manifest rewritten to list the sealed segment. A crash
// between those steps leaves an unlisted full segment, which recovery
// adopts (any segment on disk with a sequence number above the manifest's
// is trusted modulo CRC, with torn-tail repair).
//
// Compaction (TruncatePrefix) deletes whole sealed segments whose highest
// entry index is at or below the boundary: the manifest is rewritten first
// (dropping them and advancing the floor), then the files are unlinked —
// O(dropped segments), no rewrite of retained data. A crash in between
// leaves unlisted segments below the floor, which recovery garbage-collects.
//
// Snapshots live in the `snap` sidecar with the same len|crc framing around
// an encoded types.Snapshot, written to a temporary file, fsynced and
// renamed into place. After the sidecar lands a recSnapshot marker carrying
// the snapshot metadata is appended to the log; on recovery the sidecar is
// authoritative (it may be one save ahead of the marker), but a marker
// without a loadable sidecar means the compacted prefix is lost, which is
// reported as corruption.
//
// Group commit: with WALOptions.GroupCommit set, mutations are framed into
// an in-memory buffer and acknowledged immediately; a flusher goroutine
// writes and fsyncs the buffer when it reaches SyncBytes, when SyncWindow
// elapses, or eagerly when the window is negative. Each mutation carries an
// LSN; DurableLSN advances per flushed batch and OnDurable notifies the
// host, which releases the consensus outputs gated on it. Without
// GroupCommit every mutation is written and fsynced before returning, as
// the classic Storage contract requires.
const (
	recHardState byte = 1
	recEntry     byte = 2
	recTruncate  byte = 3
	recSnapshot  byte = 4
	// recFormat is the first record of every segment and carries the
	// format version, so logs written with an older entry encoding are
	// migrated (or rejected) instead of misdecoded.
	recFormat byte = 5
	// Group-prefixed record kinds (format version 5): the same mutations as
	// above, carrying the ID of the consensus group they belong to. A shard
	// manager multiplexes many groups over one WAL directory; their records
	// interleave in the shared segments (and the shared group-commit
	// buffer, so one fsync covers every group's batch) and are demultiplexed
	// by this prefix on replay.
	recGroupHardState byte = 6
	recGroupEntry     byte = 7
	recGroupTruncate  byte = 8
	recGroupSnapshot  byte = 9
)

// walFormatVersion is the current on-disk format: 2 added the session
// fields to the entry encoding, 3 added the session-ack field, 4 moved the
// log from a single rewritten file to segmented directories, 5 added the
// group-prefixed record kinds and the per-group segment metadata for
// multi-group (sharded) processes. Version 4 directories open unchanged
// (they simply contain no group records); version 2 and 3 single-file logs
// are migrated in place on open (entries re-encoded at the current layout);
// version 1 logs (no format record) predate versioning and are rejected.
const walFormatVersion = 5

// oldestDirFormat is the oldest segmented-directory format openable without
// migration.
const oldestDirFormat = 4

// oldestMigratable is the oldest single-file format migrateIfNeeded can
// re-encode.
const oldestMigratable = 2

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a WAL whose non-tail contents fail validation.
var ErrCorrupt = errors.New("storage: corrupt wal")

// WALOptions tunes the segmented WAL. The zero value is a fully
// synchronous store (every mutation fsynced before returning).
type WALOptions struct {
	// GroupCommit batches concurrent mutations into one buffered write +
	// one fsync. Acks then run ahead of durability; the consensus host
	// gates externally visible output on DurableLSN (see Grouped).
	GroupCommit bool
	// SyncWindow bounds how long an acknowledged mutation may wait for its
	// fsync batch: 0 means the 2ms default, negative flushes eagerly
	// (every flusher pass takes whatever accumulated — natural batching
	// under concurrency with no added latency). Ignored without
	// GroupCommit.
	SyncWindow time.Duration
	// SyncBytes flushes the batch early once this many buffered bytes
	// accumulate (default 256 KiB).
	SyncBytes int
	// SegmentBytes seals the active segment once it grows past this size
	// (default 4 MiB).
	SegmentBytes int
	// FsyncObserver, when set, is called after every durable batch with
	// the number of records and bytes it carried and how long the
	// write+fsync took. Called without internal locks held.
	FsyncObserver func(records, bytes int, took time.Duration)
}

func (o *WALOptions) defaults() {
	if o.SyncWindow == 0 {
		o.SyncWindow = 2 * time.Millisecond
	}
	if o.SyncBytes <= 0 {
		o.SyncBytes = 256 << 10
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
}

// segMeta describes one sealed segment in the manifest.
type segMeta struct {
	// Seq is the segment's sequence number (its file name).
	Seq uint64 `json:"seq"`
	// Last is the highest entry index the segment contains (0 if none),
	// clamped when TruncateSuffix drops a suffix: compaction may delete
	// the segment once Last falls inside the snapshot.
	Last types.Index `json:"last"`
	// GLast is Last per consensus group for segments carrying group
	// records: a multi-group segment is droppable only once every group's
	// compaction boundary covers its slice of that group's log.
	GLast map[types.GroupID]types.Index `json:"glast,omitempty"`
}

// manifest is the JSON document naming the sealed segments.
type manifest struct {
	Version  int       `json:"version"`
	Floor    uint64    `json:"floor"` // lowest live segment sequence
	Segments []segMeta `json:"segments"`
}

// WAL is a file-backed Storage: a directory of CRC-framed segments with a
// manifest, optional group commit, and a snapshot sidecar.
type WAL struct {
	dir string
	opt WALOptions

	mu sync.Mutex
	// Replayed state, kept current so Load never re-reads files.
	hs       HardState
	entries  map[types.Index]types.Entry
	snap     types.Snapshot
	snapMeta types.SnapshotMeta

	// Per-group replayed state for multi-group (sharded) processes; see
	// Group. The flat fields above are the "" namespace and stay fully
	// independent of it.
	groups map[types.GroupID]*WALGroup

	// Segment state.
	sealed      []segMeta // ascending seq
	floor       uint64
	active      *os.File
	activeSeq   uint64
	activeSize  int64
	activeLast  types.Index
	activeGLast map[types.GroupID]types.Index
	// prefixFloor is the flat namespace's last TruncatePrefix boundary,
	// used alongside every group's floor to decide segment droppability.
	prefixFloor types.Index

	// Scratch buffers (reused across records; guarded by mu).
	recBuf []byte
	// replayGLast collects per-group entry maxima while replaySegment runs
	// (recovery only).
	replayGLast map[types.GroupID]types.Index

	// Group commit.
	lastLSN   uint64
	durLSN    uint64
	pend      []byte
	pendRecs  int
	pendFirst time.Time
	force     bool
	onDurable func(uint64)
	// groupDurable holds per-group durability callbacks (see
	// walGroup.OnDurable); all fire with the shared LSN after each batch.
	groupDurable map[types.GroupID]func(uint64)
	syncErr      error
	closed       bool
	kick         chan struct{}
	flushDone    chan struct{}
	cond         *sync.Cond
}

// segName renders a segment file name.
func segName(seq uint64) string { return fmt.Sprintf("%08d.seg", seq) }

func (w *WAL) segPath(seq uint64) string { return filepath.Join(w.dir, segName(seq)) }

// snapPath returns the sidecar path inside the WAL directory.
func snapPath(dir string) string { return filepath.Join(dir, "snap") }

func manifestPath(dir string) string { return filepath.Join(dir, "MANIFEST") }

// OpenWAL opens (or creates) a fully synchronous WAL at path, recovering
// existing state. A torn final record in the active segment is repaired by
// truncation; stale temporaries from interrupted saves are removed; logs in
// the pre-segment single-file format are migrated in place.
func OpenWAL(path string) (*WAL, error) {
	return OpenWALOptions(path, WALOptions{})
}

// OpenWALOptions opens a WAL with explicit tuning (see WALOptions).
func OpenWALOptions(path string, opt WALOptions) (*WAL, error) {
	opt.defaults()
	if err := migrateIfNeeded(path); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(path, 0o755); err != nil {
		return nil, fmt.Errorf("storage: create wal dir: %w", err)
	}
	// A crash can leave partially written temporaries; they are never
	// referenced, so drop them.
	_ = os.Remove(manifestPath(path) + ".tmp")
	_ = os.Remove(snapPath(path) + ".tmp")
	if tmps, err := filepath.Glob(filepath.Join(path, "snap-*.tmp")); err == nil {
		for _, t := range tmps {
			_ = os.Remove(t)
		}
	}

	w := &WAL{
		dir:         path,
		opt:         opt,
		entries:     make(map[types.Index]types.Entry),
		groups:      make(map[types.GroupID]*WALGroup),
		activeGLast: make(map[types.GroupID]types.Index),
		floor:       1,
	}
	w.cond = sync.NewCond(&w.mu)
	man, haveMan, err := readManifest(path)
	if err != nil {
		return nil, err
	}
	if haveMan {
		w.sealed = man.Segments
		w.floor = man.Floor
		if w.floor == 0 {
			w.floor = 1
		}
	}
	if err := w.recoverSegments(); err != nil {
		w.closeFiles()
		return nil, err
	}
	if err := w.loadSidecar(); err != nil {
		w.closeFiles()
		return nil, err
	}
	if opt.GroupCommit {
		w.kick = make(chan struct{}, 1)
		w.flushDone = make(chan struct{})
		go w.flusher()
	}
	return w, nil
}

// readManifest loads the manifest; ok=false when absent (fresh directory or
// pre-manifest crash with only an active segment).
func readManifest(dir string) (manifest, bool, error) {
	data, err := os.ReadFile(manifestPath(dir))
	if errors.Is(err, os.ErrNotExist) {
		return manifest{}, false, nil
	}
	if err != nil {
		return manifest{}, false, fmt.Errorf("storage: read manifest: %w", err)
	}
	var man manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return manifest{}, false, fmt.Errorf("%w: manifest: %v", ErrCorrupt, err)
	}
	if man.Version < oldestDirFormat || man.Version > walFormatVersion {
		return manifest{}, false, fmt.Errorf("%w: manifest format version %d, this build reads %d..%d",
			ErrCorrupt, man.Version, oldestDirFormat, walFormatVersion)
	}
	sort.Slice(man.Segments, func(i, j int) bool { return man.Segments[i].Seq < man.Segments[j].Seq })
	return man, true, nil
}

// recoverSegments replays the sealed segments strictly, adopts unlisted
// segments above the manifest (torn-tail repaired), garbage-collects
// orphans below the floor, and leaves the highest segment open as active.
func (w *WAL) recoverSegments() error {
	names, err := filepath.Glob(filepath.Join(w.dir, "*.seg"))
	if err != nil {
		return fmt.Errorf("storage: list segments: %w", err)
	}
	onDisk := make(map[uint64]bool, len(names))
	for _, name := range names {
		var seq uint64
		if _, err := fmt.Sscanf(filepath.Base(name), "%08d.seg", &seq); err != nil || seq == 0 {
			continue // not ours
		}
		onDisk[seq] = true
	}
	var maxSealed uint64
	for _, s := range w.sealed {
		if !onDisk[s.Seq] {
			return fmt.Errorf("%w: manifest lists segment %d but %s is missing",
				ErrCorrupt, s.Seq, segName(s.Seq))
		}
		if s.Seq > maxSealed {
			maxSealed = s.Seq
		}
	}
	sealedSet := make(map[uint64]bool, len(w.sealed))
	for _, s := range w.sealed {
		sealedSet[s.Seq] = true
	}
	var adopted []uint64
	dirty := false
	for seq := range onDisk {
		if sealedSet[seq] {
			continue
		}
		if seq > maxSealed && seq >= w.floor {
			adopted = append(adopted, seq)
			continue
		}
		// Below the floor (or shadowed by the manifest): a compaction
		// deleted it from the manifest but crashed before the unlink.
		if err := os.Remove(w.segPath(seq)); err != nil {
			return fmt.Errorf("storage: remove orphan segment %d: %w", seq, err)
		}
		dirty = true
	}
	sort.Slice(adopted, func(i, j int) bool { return adopted[i] < adopted[j] })

	// Replay in order: sealed strictly, then adopted with repair.
	for _, s := range w.sealed {
		if _, _, err := w.replaySegment(s.Seq, true); err != nil {
			return err
		}
	}
	for i, seq := range adopted {
		validLen, segMax, err := w.replaySegment(seq, false)
		if err != nil {
			return err
		}
		last := i == len(adopted)-1
		if !last {
			// Sealed in spirit — the crash interrupted the manifest
			// update; finish it.
			meta := segMeta{Seq: seq, Last: segMax}
			if len(w.replayGLast) > 0 {
				meta.GLast = w.replayGLast
			}
			w.sealed = append(w.sealed, meta)
			dirty = true
			continue
		}
		f, err := os.OpenFile(w.segPath(seq), os.O_RDWR, 0o644)
		if err != nil {
			return fmt.Errorf("storage: open active segment: %w", err)
		}
		if validLen == 0 {
			// Torn before the bootstrap records landed: rebuild them.
			if err := f.Truncate(0); err != nil {
				f.Close()
				return fmt.Errorf("storage: reset torn segment: %w", err)
			}
			n, err := w.writeBootstrap(f)
			if err != nil {
				f.Close()
				return err
			}
			validLen = n
		} else if _, err := f.Seek(validLen, io.SeekStart); err != nil {
			f.Close()
			return fmt.Errorf("storage: seek active segment: %w", err)
		}
		w.active, w.activeSeq, w.activeSize, w.activeLast = f, seq, validLen, segMax
		w.activeGLast = w.replayGLast
	}
	if w.active == nil {
		// Fresh directory, or the crash hit between sealing and creating
		// the next active segment.
		seq := maxSealed + 1
		if seq < w.floor {
			seq = w.floor
		}
		f, err := os.OpenFile(w.segPath(seq), os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o644)
		if err != nil {
			return fmt.Errorf("storage: create segment: %w", err)
		}
		n, err := w.writeBootstrap(f)
		if err != nil {
			f.Close()
			return err
		}
		w.active, w.activeSeq, w.activeSize, w.activeLast = f, seq, n, 0
	}
	if dirty {
		if err := w.writeManifestLocked(); err != nil {
			return err
		}
	}
	return nil
}

// replaySegment applies one segment's records. Sealed segments are strict:
// any invalid frame is corruption. Unlisted (adopted/active) segments get
// torn-tail repair: the file is truncated at the first invalid frame.
// Returns the valid byte length and the highest entry index seen.
func (w *WAL) replaySegment(seq uint64, strict bool) (int64, types.Index, error) {
	path := w.segPath(seq)
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, fmt.Errorf("storage: read segment %d: %w", seq, err)
	}
	off := 0
	valid := 0
	var segMax types.Index
	var ver byte
	first := true
	w.replayGLast = make(map[types.GroupID]types.Index)
	for {
		if len(data)-off < 8 {
			break // clean end or torn header
		}
		n := binary.LittleEndian.Uint32(data[off:])
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if n == 0 || int(n) > len(data)-off-8 {
			break // torn record
		}
		body := data[off+8 : off+8+int(n)]
		if crc32.Checksum(body, crcTable) != sum {
			break // torn/corrupt record; stop replay here
		}
		if first {
			if len(body) != 2 || body[0] != recFormat {
				return 0, 0, fmt.Errorf("%w: segment %d has no format record", ErrCorrupt, seq)
			}
			ver = body[1]
			if ver < oldestMigratable || ver > walFormatVersion {
				return 0, 0, fmt.Errorf("%w: segment %d format version %d, this build reads %d; remove the WAL (and its snap sidecar) or migrate it",
					ErrCorrupt, seq, ver, walFormatVersion)
			}
			first = false
		}
		idx, err := w.apply(body, ver)
		if err != nil {
			return 0, 0, err
		}
		if idx > segMax {
			segMax = idx
		}
		off += 8 + int(n)
		valid = off
	}
	if valid != len(data) {
		if strict {
			return 0, 0, fmt.Errorf("%w: invalid record inside sealed segment %d", ErrCorrupt, seq)
		}
		if err := os.Truncate(path, int64(valid)); err != nil {
			return 0, 0, fmt.Errorf("storage: truncate torn segment tail: %w", err)
		}
	}
	return int64(valid), segMax, nil
}

// apply dispatches one replayed record body. ver is the segment's recorded
// format version; old entry layouts decode accordingly. Returns the entry
// index for entry records (0 otherwise).
func (w *WAL) apply(body []byte, ver byte) (types.Index, error) {
	if len(body) == 0 {
		return 0, ErrCorrupt
	}
	switch body[0] {
	case recFormat:
		if len(body) != 2 {
			return 0, fmt.Errorf("%w: malformed format record", ErrCorrupt)
		}
		return 0, nil
	case recHardState:
		r := body[1:]
		term, n := binary.Uvarint(r)
		if n <= 0 {
			return 0, ErrCorrupt
		}
		w.hs = HardState{Term: types.Term(term), VotedFor: types.NodeID(r[n:])}
		return 0, nil
	case recEntry:
		e, err := types.DecodeEntryAt(body[1:], entryLayoutFor(ver))
		if err != nil {
			return 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		w.entries[e.Index] = e
		return e.Index, nil
	case recTruncate:
		idx, n := binary.Uvarint(body[1:])
		if n <= 0 {
			return 0, ErrCorrupt
		}
		for i := range w.entries {
			if i > types.Index(idx) {
				delete(w.entries, i)
			}
		}
		return 0, nil
	case recSnapshot:
		snap, err := types.DecodeSnapshot(body[1:])
		if err != nil {
			return 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		if snap.Meta.LastIndex >= w.snapMeta.LastIndex {
			w.snapMeta = snap.Meta
		}
		return 0, nil
	case recGroupHardState, recGroupEntry, recGroupTruncate, recGroupSnapshot:
		return 0, w.applyGroup(body, ver)
	default:
		return 0, fmt.Errorf("%w: unknown record kind %d", ErrCorrupt, body[0])
	}
}

// applyGroup dispatches one replayed group-prefixed record body. Group
// entries never count toward the flat namespace's segment maxima; they
// feed replayGLast instead.
func (w *WAL) applyGroup(body []byte, ver byte) error {
	kind := body[0]
	r := body[1:]
	glen, n := binary.Uvarint(r)
	if n <= 0 || glen > uint64(len(r)-n) {
		return ErrCorrupt
	}
	gid := types.GroupID(r[n : n+int(glen)])
	if gid == "" {
		return fmt.Errorf("%w: group record with empty group", ErrCorrupt)
	}
	rest := r[n+int(glen):]
	g := w.ensureGroupLocked(gid)
	switch kind {
	case recGroupHardState:
		term, n := binary.Uvarint(rest)
		if n <= 0 {
			return ErrCorrupt
		}
		g.hs = HardState{Term: types.Term(term), VotedFor: types.NodeID(rest[n:])}
	case recGroupEntry:
		e, err := types.DecodeEntryAt(rest, entryLayoutFor(ver))
		if err != nil {
			return fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		g.entries[e.Index] = e
		if e.Index > w.replayGLast[gid] {
			w.replayGLast[gid] = e.Index
		}
	case recGroupTruncate:
		idx, n := binary.Uvarint(rest)
		if n <= 0 {
			return ErrCorrupt
		}
		for i := range g.entries {
			if i > types.Index(idx) {
				delete(g.entries, i)
			}
		}
		if w.replayGLast[gid] > types.Index(idx) {
			w.replayGLast[gid] = types.Index(idx)
		}
	case recGroupSnapshot:
		snap, err := types.DecodeSnapshot(rest)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		if snap.Meta.LastIndex >= g.snapMeta.LastIndex {
			g.snapMeta = snap.Meta
		}
	}
	return nil
}

// ensureGroupLocked returns the group's state, creating it on first sight
// (replay or first Group call).
func (w *WAL) ensureGroupLocked(gid types.GroupID) *WALGroup {
	g, ok := w.groups[gid]
	if !ok {
		g = &WALGroup{w: w, id: gid, entries: make(map[types.Index]types.Entry)}
		w.groups[gid] = g
	}
	return g
}

// entryLayoutFor maps a WAL format version to the entry wire layout it
// recorded: format 2 predates the session-ack field (wire layout v3),
// everything since uses the current unversioned layout.
func entryLayoutFor(walVer byte) uint8 {
	if walVer == 2 {
		return 3
	}
	return 0
}

// writeBootstrap stamps a fresh segment with the format record, the current
// hard state and the current snapshot marker — for the flat namespace and
// for every known group — fsyncs it and fsyncs the directory, so any
// suffix of segments is self-contained for every group. Returns the bytes
// written.
func (w *WAL) writeBootstrap(f *os.File) (int64, error) {
	var buf []byte
	buf = appendFrame(buf, []byte{recFormat, walFormatVersion})
	buf = appendFrame(buf, hardStateBody(w.hs))
	if w.snapMeta.LastIndex != 0 {
		marker := types.Snapshot{Meta: w.snapMeta}
		buf = appendFrame(buf, append([]byte{recSnapshot}, types.EncodeSnapshot(marker)...))
	}
	// Deterministic group order keeps bootstrap bytes reproducible.
	gids := make([]types.GroupID, 0, len(w.groups))
	for gid := range w.groups {
		gids = append(gids, gid)
	}
	sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })
	for _, gid := range gids {
		g := w.groups[gid]
		buf = appendFrame(buf, groupBody(recGroupHardState, gid, hardStateBody(g.hs)[1:]))
		if g.snapMeta.LastIndex != 0 {
			marker := types.Snapshot{Meta: g.snapMeta}
			buf = appendFrame(buf, groupBody(recGroupSnapshot, gid, types.EncodeSnapshot(marker)))
		}
	}
	if _, err := f.Write(buf); err != nil {
		return 0, fmt.Errorf("storage: bootstrap segment: %w", err)
	}
	if err := f.Sync(); err != nil {
		return 0, fmt.Errorf("storage: sync segment: %w", err)
	}
	if err := syncDir(f.Name()); err != nil {
		return 0, fmt.Errorf("storage: sync wal dir: %w", err)
	}
	return int64(len(buf)), nil
}

// writeManifestLocked atomically replaces the manifest with the current
// sealed-segment list and floor.
func (w *WAL) writeManifestLocked() error {
	man := manifest{Version: walFormatVersion, Floor: w.floor, Segments: w.sealed}
	if man.Segments == nil {
		man.Segments = []segMeta{}
	}
	data, err := json.Marshal(man)
	if err != nil {
		return fmt.Errorf("storage: encode manifest: %w", err)
	}
	path := manifestPath(w.dir)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("storage: create manifest tmp: %w", err)
	}
	_, werr := f.Write(data)
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: write manifest: %w", werr)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: install manifest: %w", err)
	}
	if err := syncDir(path); err != nil {
		return fmt.Errorf("storage: sync wal dir: %w", err)
	}
	return nil
}

// loadSidecar resolves the recovery-base snapshot after replay, for the
// flat namespace and for every group. The sidecar wins over the marker (it
// may be one save ahead); a marker without a loadable sidecar means the
// compacted prefix is unrecoverable.
func (w *WAL) loadSidecar() error {
	snap, ok, err := readSnapshotFile(snapPath(w.dir))
	if err != nil {
		return err
	}
	if !ok {
		if w.snapMeta.LastIndex != 0 {
			return fmt.Errorf("%w: snapshot marker at %d but no sidecar",
				ErrCorrupt, w.snapMeta.LastIndex)
		}
	} else {
		if snap.Meta.LastIndex < w.snapMeta.LastIndex {
			return fmt.Errorf("%w: sidecar snapshot %d older than marker %d",
				ErrCorrupt, snap.Meta.LastIndex, w.snapMeta.LastIndex)
		}
		w.snap = snap
		// The snapshot re-seeds the compaction boundary lost at restart.
		w.prefixFloor = snap.Meta.LastIndex
		// Entries covered by the snapshot may survive in the log when the
		// process died between the snapshot save and the compaction; they
		// are stale, not corrupt.
		for i := range w.entries {
			if i <= snap.Meta.LastIndex {
				delete(w.entries, i)
			}
		}
	}
	// A group whose every record was compacted away can still be named by a
	// sidecar (the marker flush may have been lost to a crash the sidecar
	// write survived); adopt such groups so their snapshots are not
	// orphaned.
	sidecars, err := filepath.Glob(filepath.Join(w.dir, "snap-*"))
	if err != nil {
		return fmt.Errorf("storage: list group sidecars: %w", err)
	}
	for _, path := range sidecars {
		name := filepath.Base(path)
		raw, err := hex.DecodeString(name[len("snap-"):])
		if err != nil || len(raw) == 0 {
			continue // not a group sidecar (e.g. a stray temp)
		}
		w.ensureGroupLocked(types.GroupID(raw))
	}
	for gid, g := range w.groups {
		snap, ok, err := readSnapshotFile(groupSnapPath(w.dir, gid))
		if err != nil {
			return fmt.Errorf("group %q: %w", gid, err)
		}
		if !ok {
			if g.snapMeta.LastIndex != 0 {
				return fmt.Errorf("%w: group %q snapshot marker at %d but no sidecar",
					ErrCorrupt, gid, g.snapMeta.LastIndex)
			}
			continue
		}
		if snap.Meta.LastIndex < g.snapMeta.LastIndex {
			return fmt.Errorf("%w: group %q sidecar snapshot %d older than marker %d",
				ErrCorrupt, gid, snap.Meta.LastIndex, g.snapMeta.LastIndex)
		}
		g.snap = snap
		g.snapMeta = snap.Meta
		g.floorIdx = snap.Meta.LastIndex
		for i := range g.entries {
			if i <= snap.Meta.LastIndex {
				delete(g.entries, i)
			}
		}
	}
	return nil
}

// groupSnapPath names a group's snapshot sidecar. The group ID is
// hex-encoded so arbitrary IDs map to safe, collision-free file names.
func groupSnapPath(dir string, gid types.GroupID) string {
	return filepath.Join(dir, "snap-"+hex.EncodeToString([]byte(gid)))
}

// readSnapshotFile reads a framed snapshot file; ok=false when absent. A
// file that exists but fails validation is corrupt (sidecar writes are
// atomic; no torn-tail repair applies).
func readSnapshotFile(path string) (types.Snapshot, bool, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return types.Snapshot{}, false, nil
	}
	if err != nil {
		return types.Snapshot{}, false, fmt.Errorf("storage: read snapshot: %w", err)
	}
	if len(data) < 8 {
		return types.Snapshot{}, false, fmt.Errorf("%w: short snapshot file", ErrCorrupt)
	}
	n := binary.LittleEndian.Uint32(data)
	sum := binary.LittleEndian.Uint32(data[4:])
	if int(n) != len(data)-8 || crc32.Checksum(data[8:], crcTable) != sum {
		return types.Snapshot{}, false, fmt.Errorf("%w: snapshot checksum mismatch", ErrCorrupt)
	}
	snap, err := types.DecodeSnapshot(data[8:])
	if err != nil {
		return types.Snapshot{}, false, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return snap, true, nil
}

// writeSnapshotFile atomically installs a framed snapshot at path.
func writeSnapshotFile(path string, snap types.Snapshot) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("storage: create snapshot tmp: %w", err)
	}
	enc := types.EncodeSnapshot(snap)
	werr := writeRecord(f, enc)
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: write snapshot: %w", werr)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: install snapshot: %w", err)
	}
	if err := syncDir(path); err != nil {
		return fmt.Errorf("storage: sync snapshot dir: %w", err)
	}
	return nil
}

// appendFrame frames one record body onto buf.
func appendFrame(buf, body []byte) []byte {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(body, crcTable))
	buf = append(buf, hdr[:]...)
	return append(buf, body...)
}

// writeRecord frames and writes one record without syncing.
func writeRecord(f *os.File, body []byte) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(body, crcTable))
	if _, err := f.Write(hdr[:]); err != nil {
		return err
	}
	_, err := f.Write(body)
	return err
}

// syncDir fsyncs the directory containing path so renames are durable.
func syncDir(path string) error {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// appendBodyLocked accepts one record body: buffered under group commit,
// written + fsynced inline otherwise.
func (w *WAL) appendBodyLocked(body []byte) error {
	if w.syncErr != nil {
		return w.syncErr
	}
	if w.closed {
		return errors.New("storage: wal closed")
	}
	if w.opt.GroupCommit {
		if len(w.pend) == 0 {
			w.pendFirst = time.Now()
		}
		w.pend = appendFrame(w.pend, body)
		w.pendRecs++
		w.lastLSN++
		// The flusher owns the latency window: wake it on every append so
		// the timer counts from the first buffered record, and it decides
		// whether to wait out the window or flush (size threshold reached,
		// eager mode, forced sync).
		w.kickLocked()
		return nil
	}
	if err := writeRecord(w.active, body); err != nil {
		return fmt.Errorf("storage: append wal: %w", err)
	}
	if err := w.active.Sync(); err != nil {
		return fmt.Errorf("storage: sync wal: %w", err)
	}
	w.activeSize += int64(len(body)) + 8
	w.lastLSN++
	w.durLSN = w.lastLSN
	return w.maybeRollLocked()
}

func (w *WAL) kickLocked() {
	select {
	case w.kick <- struct{}{}:
	default:
	}
}

// maybeRollLocked seals the active segment once it exceeds SegmentBytes:
// fsync it, create + bootstrap the next active segment, then list the
// sealed one in the manifest. Crash-ordering: the new segment exists before
// the manifest names its predecessor sealed, so recovery always finds an
// adoptable active segment.
func (w *WAL) maybeRollLocked() error {
	if w.activeSize < int64(w.opt.SegmentBytes) {
		return nil
	}
	if err := w.active.Sync(); err != nil {
		return fmt.Errorf("storage: sync segment: %w", err)
	}
	seq := w.activeSeq + 1
	f, err := os.OpenFile(w.segPath(seq), os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("storage: create segment: %w", err)
	}
	n, err := w.writeBootstrap(f)
	if err != nil {
		f.Close()
		return err
	}
	meta := segMeta{Seq: w.activeSeq, Last: w.activeLast}
	if len(w.activeGLast) > 0 {
		meta.GLast = w.activeGLast
	}
	w.sealed = append(w.sealed, meta)
	old := w.active
	w.active, w.activeSeq, w.activeSize, w.activeLast = f, seq, n, 0
	w.activeGLast = make(map[types.GroupID]types.Index)
	old.Close()
	return w.writeManifestLocked()
}

// flusher is the group-commit goroutine: it drains the pending buffer into
// the active segment with one write + one fsync per batch, honoring the
// latency/size window, then advances the durability horizon and notifies.
func (w *WAL) flusher() {
	defer close(w.flushDone)
	for {
		<-w.kick
		for {
			w.mu.Lock()
			if len(w.pend) == 0 {
				closed := w.closed
				w.mu.Unlock()
				if closed {
					return
				}
				break
			}
			if !w.force && !w.closed && w.opt.SyncWindow > 0 && len(w.pend) < w.opt.SyncBytes {
				age := time.Since(w.pendFirst)
				if age < w.opt.SyncWindow {
					w.mu.Unlock()
					t := time.NewTimer(w.opt.SyncWindow - age)
					select {
					case <-w.kick:
						t.Stop()
					case <-t.C:
					}
					continue
				}
			}
			batch := w.pend
			recs := w.pendRecs
			lsn := w.lastLSN
			w.pend = nil
			w.pendRecs = 0
			w.force = false
			f := w.active
			w.mu.Unlock()

			start := time.Now()
			_, err := f.Write(batch)
			if err == nil {
				err = f.Sync()
			}
			took := time.Since(start)

			w.mu.Lock()
			if err != nil {
				if w.syncErr == nil {
					w.syncErr = fmt.Errorf("storage: group flush: %w", err)
				}
			} else {
				w.durLSN = lsn
				w.activeSize += int64(len(batch))
				if rerr := w.maybeRollLocked(); rerr != nil && w.syncErr == nil {
					w.syncErr = rerr
				}
			}
			cb := w.onDurable
			var gcbs []func(uint64)
			for _, fn := range w.groupDurable {
				gcbs = append(gcbs, fn)
			}
			obs := w.opt.FsyncObserver
			w.cond.Broadcast()
			w.mu.Unlock()
			if err == nil {
				if obs != nil {
					obs(recs, len(batch), took)
				}
				if cb != nil {
					cb(lsn)
				}
				// Every group shares the LSN space, so one batch advances
				// every group's durability horizon at once.
				for _, fn := range gcbs {
					fn(lsn)
				}
			}
		}
	}
}

// --- Storage implementation ------------------------------------------------

// SetHardState implements Storage.
func (w *WAL) SetHardState(hs HardState) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.appendBodyLocked(hardStateBody(hs)); err != nil {
		return err
	}
	w.hs = hs
	return nil
}

func hardStateBody(hs HardState) []byte {
	body := make([]byte, 0, 16+len(hs.VotedFor))
	body = append(body, recHardState)
	body = binary.AppendUvarint(body, uint64(hs.Term))
	body = append(body, hs.VotedFor...)
	return body
}

// groupBody assembles a group-prefixed record: kind, group length + bytes,
// then the kind-specific payload.
func groupBody(kind byte, gid types.GroupID, rest []byte) []byte {
	body := make([]byte, 0, 2+len(gid)+len(rest))
	body = append(body, kind)
	body = binary.AppendUvarint(body, uint64(len(gid)))
	body = append(body, gid...)
	return append(body, rest...)
}

// AppendEntry implements Storage. The record is encoded into a reused
// scratch buffer, so steady-state appends do not allocate.
func (w *WAL) AppendEntry(e types.Entry) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.recBuf = append(w.recBuf[:0], recEntry)
	w.recBuf = types.AppendEntryTo(w.recBuf, e)
	// Count the entry toward the active segment before the append: the
	// append itself may roll the segment, and the sealed metadata must
	// cover every entry the sealed file carries. (Overstating Last — when
	// a grouped flush rolls before this entry's batch lands — only makes
	// compaction keep the segment longer, which is safe.)
	if e.Index > w.activeLast {
		w.activeLast = e.Index
	}
	if err := w.appendBodyLocked(w.recBuf); err != nil {
		return err
	}
	w.entries[e.Index] = e.Clone()
	return nil
}

// TruncateSuffix implements Storage. Sealed-segment metadata is re-clamped
// so compaction can still drop a segment whose surviving entries all sit
// below the snapshot.
func (w *WAL) TruncateSuffix(idx types.Index) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.recBuf = append(w.recBuf[:0], recTruncate)
	w.recBuf = binary.AppendUvarint(w.recBuf, uint64(idx))
	if err := w.appendBodyLocked(w.recBuf); err != nil {
		return err
	}
	for i := range w.entries {
		if i > idx {
			delete(w.entries, i)
		}
	}
	if w.activeLast > idx {
		w.activeLast = idx
	}
	clamped := false
	for i := range w.sealed {
		if w.sealed[i].Last > idx {
			w.sealed[i].Last = idx
			clamped = true
		}
	}
	if clamped {
		return w.writeManifestLocked()
	}
	return nil
}

// SaveSnapshot implements Storage: the snapshot is written atomically to
// the sidecar file, then marked in the log so recovery knows a snapshot is
// the recovery base.
func (w *WAL) SaveSnapshot(snap types.Snapshot) error {
	if snap.IsZero() {
		return fmt.Errorf("storage: save empty snapshot")
	}
	if err := writeSnapshotFile(snapPath(w.dir), snap); err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	// Marker: meta only (no state bytes) — the sidecar holds the data.
	marker := types.Snapshot{Meta: snap.Meta}
	body := append([]byte{recSnapshot}, types.EncodeSnapshot(marker)...)
	if err := w.appendBodyLocked(body); err != nil {
		return err
	}
	w.snap = snap.Clone()
	w.snapMeta = snap.Meta
	return nil
}

// TruncatePrefix implements Storage: sealed segments whose entries all sit
// at or below idx are dropped from the manifest and unlinked. Retained
// segments are never rewritten or touched — compaction is O(dropped
// segments) regardless of how much log is retained.
func (w *WAL) TruncatePrefix(idx types.Index) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for i := range w.entries {
		if i <= idx {
			delete(w.entries, i)
		}
	}
	if idx > w.prefixFloor {
		w.prefixFloor = idx
	}
	return w.dropCoveredLocked()
}

// segCoveredLocked reports whether every namespace's compaction boundary
// covers the sealed segment: the flat prefix floor over its Last, and each
// group's floor over its slice of that group's log. Records that carry no
// entries (hard state, markers) never hold a segment — later bootstraps
// re-stamp them.
func (w *WAL) segCoveredLocked(s segMeta) bool {
	if s.Last > w.prefixFloor {
		return false
	}
	for gid, last := range s.GLast {
		g, ok := w.groups[gid]
		if !ok || last > g.floorIdx {
			return false
		}
	}
	return true
}

// dropCoveredLocked unlinks sealed segments wholly covered by every
// namespace's compaction boundary. Manifest first: recovery treats on-disk
// segments below the floor as orphans, so a crash between the manifest write
// and the unlinks only leaves garbage that the next open collects.
func (w *WAL) dropCoveredLocked() error {
	keep := w.sealed[:0]
	var drop []uint64
	for _, s := range w.sealed {
		if w.segCoveredLocked(s) {
			drop = append(drop, s.Seq)
		} else {
			keep = append(keep, s)
		}
	}
	if len(drop) == 0 {
		return nil
	}
	w.sealed = append([]segMeta(nil), keep...)
	w.floor = w.activeSeq
	if len(w.sealed) > 0 && w.sealed[0].Seq < w.floor {
		w.floor = w.sealed[0].Seq
	}
	if err := w.writeManifestLocked(); err != nil {
		return err
	}
	for _, seq := range drop {
		if err := os.Remove(w.segPath(seq)); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("storage: remove compacted segment %d: %w", seq, err)
		}
	}
	if err := syncDir(manifestPath(w.dir)); err != nil {
		return fmt.Errorf("storage: sync wal dir: %w", err)
	}
	return nil
}

// Load implements Storage.
func (w *WAL) Load() (HardState, []types.Entry, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]types.Entry, 0, len(w.entries))
	for _, e := range w.entries {
		if e.Index <= w.snap.Meta.LastIndex {
			continue
		}
		out = append(out, e.Clone())
	}
	sortEntries(out)
	return w.hs, out, nil
}

// LoadSnapshot implements Storage.
func (w *WAL) LoadSnapshot() (types.Snapshot, bool, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.snap.IsZero() {
		return types.Snapshot{}, false, nil
	}
	return w.snap.Clone(), true, nil
}

// Close implements Storage: pending group-commit batches are flushed and
// fsynced before the segment closes.
func (w *WAL) Close() error {
	if w.opt.GroupCommit {
		w.mu.Lock()
		w.closed = true
		w.force = true
		w.kickLocked()
		w.mu.Unlock()
		<-w.flushDone
		w.mu.Lock()
		err := w.syncErr
		w.mu.Unlock()
		if cerr := w.active.Close(); err == nil && cerr != nil {
			err = fmt.Errorf("storage: close wal: %w", cerr)
		}
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.closed = true
	if err := w.active.Sync(); err != nil {
		w.active.Close()
		return fmt.Errorf("storage: close wal: %w", err)
	}
	return w.active.Close()
}

func (w *WAL) closeFiles() {
	if w.active != nil {
		w.active.Close()
	}
}

// --- Grouped implementation ------------------------------------------------

// GroupCommit implements Grouped.
func (w *WAL) GroupCommit() bool { return w.opt.GroupCommit }

// LastLSN implements Grouped.
func (w *WAL) LastLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastLSN
}

// DurableLSN implements Grouped.
func (w *WAL) DurableLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.durLSN
}

// OnDurable implements Grouped.
func (w *WAL) OnDurable(fn func(lsn uint64)) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.onDurable = fn
}

// SetFsyncObserver installs (or replaces) the fsync-batch observer after
// open. The consensus node uses it to feed the flight recorder's
// hist.fsync_batch_size histogram when tracing is enabled.
func (w *WAL) SetFsyncObserver(fn func(records, bytes int, took time.Duration)) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.opt.FsyncObserver = fn
}

// Sync implements Grouped: forces everything pending onto disk and blocks
// until durable (or the first write error, which is sticky).
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.opt.GroupCommit {
		return w.syncErr
	}
	target := w.lastLSN
	for w.durLSN < target && w.syncErr == nil {
		w.force = true
		w.kickLocked()
		w.cond.Wait()
	}
	return w.syncErr
}

// SegmentCount reports sealed and active segment counts (diagnostics and
// tests).
func (w *WAL) SegmentCount() (sealed int, active uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.sealed), w.activeSeq
}

var _ Grouped = (*WAL)(nil)
