package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"github.com/hraft-io/hraft/internal/types"
)

// WAL record framing:
//
//	len(u32 LE) | crc32c(u32 LE, over kind+payload) | kind(1) | payload
//
// Records are appended and fsynced. On open, the tail is scanned; a short or
// corrupt final record (torn write) is truncated away, everything before it
// is replayed.
const (
	recHardState byte = 1
	recEntry     byte = 2
	recTruncate  byte = 3
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a WAL whose non-tail contents fail validation.
var ErrCorrupt = errors.New("storage: corrupt wal")

// WAL is a file-backed Storage. All mutations are appended to a single log
// file and fsynced before returning.
type WAL struct {
	f    *os.File
	path string
	// replayed state, kept current so Load never re-reads the file.
	hs      HardState
	entries map[types.Index]types.Entry
}

// OpenWAL opens (or creates) a WAL at path, recovering existing state. A
// torn final record is repaired by truncation.
func OpenWAL(path string) (*WAL, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("storage: create wal dir: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open wal: %w", err)
	}
	w := &WAL{f: f, path: path, entries: make(map[types.Index]types.Entry)}
	if err := w.replay(); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

func (w *WAL) replay() error {
	data, err := io.ReadAll(w.f)
	if err != nil {
		return fmt.Errorf("storage: read wal: %w", err)
	}
	off := 0
	valid := 0
	for {
		if len(data)-off < 8 {
			break // clean end or torn length/crc header
		}
		n := binary.LittleEndian.Uint32(data[off:])
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if n == 0 || int(n) > len(data)-off-8 {
			break // torn record
		}
		body := data[off+8 : off+8+int(n)]
		if crc32.Checksum(body, crcTable) != sum {
			break // torn/corrupt record; stop replay here
		}
		if err := w.apply(body); err != nil {
			return err
		}
		off += 8 + int(n)
		valid = off
	}
	if valid != len(data) {
		// Drop the torn tail so future appends start from a clean frame.
		if err := w.f.Truncate(int64(valid)); err != nil {
			return fmt.Errorf("storage: truncate torn wal tail: %w", err)
		}
	}
	if _, err := w.f.Seek(int64(valid), io.SeekStart); err != nil {
		return fmt.Errorf("storage: seek wal: %w", err)
	}
	return nil
}

func (w *WAL) apply(body []byte) error {
	if len(body) == 0 {
		return ErrCorrupt
	}
	switch body[0] {
	case recHardState:
		r := body[1:]
		term, n := binary.Uvarint(r)
		if n <= 0 {
			return ErrCorrupt
		}
		w.hs = HardState{Term: types.Term(term), VotedFor: types.NodeID(r[n:])}
		return nil
	case recEntry:
		e, err := types.DecodeEntry(body[1:])
		if err != nil {
			return fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		w.entries[e.Index] = e
		return nil
	case recTruncate:
		idx, n := binary.Uvarint(body[1:])
		if n <= 0 {
			return ErrCorrupt
		}
		for i := range w.entries {
			if i > types.Index(idx) {
				delete(w.entries, i)
			}
		}
		return nil
	default:
		return fmt.Errorf("%w: unknown record kind %d", ErrCorrupt, body[0])
	}
}

func (w *WAL) appendRecord(body []byte) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(body, crcTable))
	if _, err := w.f.Write(hdr[:]); err != nil {
		return fmt.Errorf("storage: append wal: %w", err)
	}
	if _, err := w.f.Write(body); err != nil {
		return fmt.Errorf("storage: append wal: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("storage: sync wal: %w", err)
	}
	return nil
}

// SetHardState implements Storage.
func (w *WAL) SetHardState(hs HardState) error {
	body := make([]byte, 0, 16+len(hs.VotedFor))
	body = append(body, recHardState)
	body = binary.AppendUvarint(body, uint64(hs.Term))
	body = append(body, hs.VotedFor...)
	if err := w.appendRecord(body); err != nil {
		return err
	}
	w.hs = hs
	return nil
}

// AppendEntry implements Storage.
func (w *WAL) AppendEntry(e types.Entry) error {
	enc := types.EncodeEntry(e)
	body := make([]byte, 0, 1+len(enc))
	body = append(body, recEntry)
	body = append(body, enc...)
	if err := w.appendRecord(body); err != nil {
		return err
	}
	w.entries[e.Index] = e.Clone()
	return nil
}

// TruncateSuffix implements Storage.
func (w *WAL) TruncateSuffix(idx types.Index) error {
	body := make([]byte, 0, 10)
	body = append(body, recTruncate)
	body = binary.AppendUvarint(body, uint64(idx))
	if err := w.appendRecord(body); err != nil {
		return err
	}
	for i := range w.entries {
		if i > idx {
			delete(w.entries, i)
		}
	}
	return nil
}

// Load implements Storage.
func (w *WAL) Load() (HardState, []types.Entry, error) {
	out := make([]types.Entry, 0, len(w.entries))
	for _, e := range w.entries {
		out = append(out, e.Clone())
	}
	sortEntries(out)
	return w.hs, out, nil
}

// Close implements Storage.
func (w *WAL) Close() error {
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return fmt.Errorf("storage: close wal: %w", err)
	}
	return w.f.Close()
}

var _ Storage = (*WAL)(nil)
