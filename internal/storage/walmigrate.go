package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"github.com/hraft-io/hraft/internal/types"
)

// Migration from the pre-segment single-file WAL (format versions 2 and 3)
// to the segmented directory layout (version 4).
//
// The old layout was one CRC-framed record file at <path> plus a snapshot
// sidecar at <path>.snap. Migration replays the file (tolerating a torn
// tail, as the old open did), then builds a complete directory next to it
// and swaps it in with a two-rename dance that is recoverable at any crash
// point:
//
//	build   <path>.migrating/   (segment 1 + MANIFEST + snap, all fsynced)
//	rename  <path>        -> <path>.old
//	rename  <path>.migrating -> <path>
//	remove  <path>.snap, <path>.old
//
// On open, the leftovers identify the crash point: a .migrating directory
// next to a still-regular <path> means the build was interrupted (redo from
// scratch); a missing <path> with both .migrating and .old means the crash
// hit between the renames (finish the second); a directory <path> with
// .old still present means only the cleanup remains.

// migrateIfNeeded converts a single-file WAL at path to the segmented
// layout, and finishes or unwinds a previously interrupted migration. It is
// a no-op when path is absent or already a directory with no leftovers.
func migrateIfNeeded(path string) error {
	mig := path + ".migrating"
	old := path + ".old"
	oldSnap := path + ".snap"

	fi, err := os.Stat(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		if _, merr := os.Stat(mig); merr == nil {
			if _, oerr := os.Stat(old); oerr == nil {
				// Crashed between the two renames: the built directory is
				// complete, install it.
				if err := os.Rename(mig, path); err != nil {
					return fmt.Errorf("storage: finish wal migration: %w", err)
				}
				if err := syncDir(path); err != nil {
					return fmt.Errorf("storage: sync wal parent: %w", err)
				}
				return removeMigrationLeftovers(oldSnap, old)
			}
			// A build directory with no original to migrate: stale debris.
			if err := os.RemoveAll(mig); err != nil {
				return fmt.Errorf("storage: remove stale migration: %w", err)
			}
		}
		return nil
	case err != nil:
		return fmt.Errorf("storage: stat wal: %w", err)
	case fi.IsDir():
		if _, oerr := os.Stat(old); oerr == nil {
			// Migration completed through the second rename; only the
			// cleanup was interrupted.
			return removeMigrationLeftovers(oldSnap, old)
		}
		return nil
	}

	// path is a regular file: an old single-file WAL. Any partial build is
	// stale (it may reflect an older file state); rebuild from scratch.
	if err := os.RemoveAll(mig); err != nil {
		return fmt.Errorf("storage: remove stale migration: %w", err)
	}
	hs, entries, snap, haveSnap, err := replaySingleFile(path, oldSnap)
	if err != nil {
		return err
	}
	if err := buildMigrationDir(mig, hs, entries, snap, haveSnap); err != nil {
		os.RemoveAll(mig)
		return err
	}
	if err := os.Rename(path, old); err != nil {
		return fmt.Errorf("storage: stash old wal: %w", err)
	}
	if err := syncDir(path); err != nil {
		return fmt.Errorf("storage: sync wal parent: %w", err)
	}
	if err := os.Rename(mig, path); err != nil {
		return fmt.Errorf("storage: install migrated wal: %w", err)
	}
	if err := syncDir(path); err != nil {
		return fmt.Errorf("storage: sync wal parent: %w", err)
	}
	return removeMigrationLeftovers(oldSnap, old)
}

// removeMigrationLeftovers drops the old sidecar before the stashed file:
// the stash is the marker that cleanup is still owed, so it must go last.
func removeMigrationLeftovers(oldSnap, old string) error {
	if err := os.Remove(oldSnap); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("storage: remove old wal sidecar: %w", err)
	}
	if err := os.Remove(old); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("storage: remove old wal: %w", err)
	}
	return nil
}

// replaySingleFile reads an old-format WAL file and its sidecar, repairing
// a torn tail by stopping at the first invalid frame (matching the old
// open's behavior).
func replaySingleFile(path, sidecar string) (HardState, []types.Entry, types.Snapshot, bool, error) {
	var hs HardState
	var snapMeta types.SnapshotMeta
	entries := make(map[types.Index]types.Entry)

	data, err := os.ReadFile(path)
	if err != nil {
		return hs, nil, types.Snapshot{}, false, fmt.Errorf("storage: read wal: %w", err)
	}
	off := 0
	var ver byte
	first := true
	for {
		if len(data)-off < 8 {
			break
		}
		n := binary.LittleEndian.Uint32(data[off:])
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if n == 0 || int(n) > len(data)-off-8 {
			break
		}
		body := data[off+8 : off+8+int(n)]
		if crc32.Checksum(body, crcTable) != sum {
			break
		}
		if first {
			if len(body) != 2 || body[0] != recFormat {
				return hs, nil, types.Snapshot{}, false, fmt.Errorf(
					"%w: log predates format versioning; remove the WAL (and its .snap sidecar) to start fresh",
					ErrCorrupt)
			}
			ver = body[1]
			if ver < oldestMigratable || ver >= walFormatVersion {
				return hs, nil, types.Snapshot{}, false, fmt.Errorf(
					"%w: single-file wal format version %d, this build migrates versions %d-%d; remove the WAL (and its .snap sidecar) or migrate it",
					ErrCorrupt, ver, oldestMigratable, walFormatVersion-1)
			}
			first = false
		}
		switch body[0] {
		case recFormat:
			// validated above
		case recHardState:
			r := body[1:]
			term, n := binary.Uvarint(r)
			if n <= 0 {
				return hs, nil, types.Snapshot{}, false, ErrCorrupt
			}
			hs = HardState{Term: types.Term(term), VotedFor: types.NodeID(r[n:])}
		case recEntry:
			e, err := types.DecodeEntryAt(body[1:], entryLayoutFor(ver))
			if err != nil {
				return hs, nil, types.Snapshot{}, false, fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
			entries[e.Index] = e
		case recTruncate:
			idx, n := binary.Uvarint(body[1:])
			if n <= 0 {
				return hs, nil, types.Snapshot{}, false, ErrCorrupt
			}
			for i := range entries {
				if i > types.Index(idx) {
					delete(entries, i)
				}
			}
		case recSnapshot:
			snap, err := types.DecodeSnapshot(body[1:])
			if err != nil {
				return hs, nil, types.Snapshot{}, false, fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
			if snap.Meta.LastIndex >= snapMeta.LastIndex {
				snapMeta = snap.Meta
			}
		default:
			return hs, nil, types.Snapshot{}, false, fmt.Errorf("%w: unknown record kind %d", ErrCorrupt, body[0])
		}
		off += 8 + int(n)
	}

	snap, haveSnap, err := readSnapshotFile(sidecar)
	if err != nil {
		return hs, nil, types.Snapshot{}, false, err
	}
	if !haveSnap && snapMeta.LastIndex != 0 {
		return hs, nil, types.Snapshot{}, false, fmt.Errorf(
			"%w: snapshot marker at %d but no sidecar", ErrCorrupt, snapMeta.LastIndex)
	}
	if haveSnap && snap.Meta.LastIndex < snapMeta.LastIndex {
		return hs, nil, types.Snapshot{}, false, fmt.Errorf(
			"%w: sidecar snapshot %d older than marker %d", ErrCorrupt, snap.Meta.LastIndex, snapMeta.LastIndex)
	}
	out := make([]types.Entry, 0, len(entries))
	for _, e := range entries {
		if haveSnap && e.Index <= snap.Meta.LastIndex {
			continue
		}
		out = append(out, e)
	}
	sortEntries(out)
	return hs, out, snap, haveSnap, nil
}

// buildMigrationDir writes a complete segmented WAL directory at dir:
// segment 1 carrying the migrated state (entries re-encoded at the current
// layout), an empty manifest, and the snapshot sidecar. Everything is
// fsynced before returning.
func buildMigrationDir(dir string, hs HardState, entries []types.Entry, snap types.Snapshot, haveSnap bool) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("storage: create migration dir: %w", err)
	}
	if haveSnap {
		if err := writeSnapshotFile(snapPath(dir), snap); err != nil {
			return err
		}
	}
	var buf []byte
	buf = appendFrame(buf, []byte{recFormat, walFormatVersion})
	buf = appendFrame(buf, hardStateBody(hs))
	if haveSnap {
		marker := types.Snapshot{Meta: snap.Meta}
		buf = appendFrame(buf, append([]byte{recSnapshot}, types.EncodeSnapshot(marker)...))
	}
	for _, e := range entries {
		body := append([]byte{recEntry}, types.AppendEntryTo(nil, e)...)
		buf = appendFrame(buf, body)
	}
	f, err := os.OpenFile(segPathIn(dir, 1), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("storage: create migrated segment: %w", err)
	}
	_, werr := f.Write(buf)
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("storage: write migrated segment: %w", werr)
	}
	tmpW := &WAL{dir: dir, floor: 1}
	if err := tmpW.writeManifestLocked(); err != nil {
		return err
	}
	return syncDir(segPathIn(dir, 1))
}

func segPathIn(dir string, seq uint64) string {
	return filepath.Join(dir, segName(seq))
}
