package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// TraceSpan is one node of an assembled trace tree: a trace-stamped event
// plus the causal gap since its parent and the hops it caused.
type TraceSpan struct {
	// Event is the underlying ring event (EvTraceHop, EvStage,
	// EvCommitEntry, EvReadServe, EvSlowOp — anything trace-stamped).
	Event Event `json:"event"`
	// Gap is this span's latency attribution: the time since its causal
	// parent (0 at the root). Cross-node gaps include the wire flight
	// time, since every node records on its own (simulated-global or NTP-
	// comparable) clock.
	Gap time.Duration `json:"gap"`
	// Children are the spans this one causally precedes, in time order.
	Children []*TraceSpan `json:"children,omitempty"`
}

// TraceTree is one sampled operation's assembled cross-node journey.
type TraceTree struct {
	// ID is the trace ID every span shares.
	ID uint64 `json:"id"`
	// Root is the origin span (the earliest event recorded for the ID).
	Root *TraceSpan `json:"root"`
	// Nodes lists every node label that contributed a span, sorted.
	Nodes []string `json:"nodes"`
	// Start and Total bound the journey (first event time, last minus
	// first).
	Start time.Duration `json:"start"`
	Total time.Duration `json:"total"`
}

// AssembleTraces groups merged (Merge-ordered) events by trace ID and
// builds one causally-ordered tree per trace. Parenthood is assigned by
// the hop structure actually recorded: an event's parent is the previous
// event of the same trace on the same node when there is one (local
// program order), otherwise the latest earlier event of the trace on any
// node (the cross-node hop that caused it). Events with Trace == 0 are
// ignored. Trees come back sorted by start time.
func AssembleTraces(events []Event) []*TraceTree {
	byTrace := make(map[uint64][]Event)
	var order []uint64
	for _, e := range events {
		if e.Trace == 0 {
			continue
		}
		if _, ok := byTrace[e.Trace]; !ok {
			order = append(order, e.Trace)
		}
		byTrace[e.Trace] = append(byTrace[e.Trace], e)
	}
	trees := make([]*TraceTree, 0, len(order))
	for _, id := range order {
		trees = append(trees, assembleOne(id, byTrace[id]))
	}
	sort.SliceStable(trees, func(i, j int) bool { return trees[i].Start < trees[j].Start })
	return trees
}

// assembleOne builds the tree for one trace's events (already in merged
// time order, but re-sorted defensively for raw per-node snapshots).
func assembleOne(id uint64, events []Event) *TraceTree {
	sort.SliceStable(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Seq < b.Seq
	})
	spans := make([]*TraceSpan, len(events))
	lastOnNode := make(map[string]*TraceSpan)
	nodes := make(map[string]bool)
	var root, latest *TraceSpan
	for i, e := range events {
		sp := &TraceSpan{Event: e}
		spans[i] = sp
		nodes[e.Node] = true
		parent := lastOnNode[e.Node]
		if parent == nil {
			parent = latest
		}
		if parent != nil {
			sp.Gap = e.At - parent.Event.At
			parent.Children = append(parent.Children, sp)
		} else {
			root = sp
		}
		lastOnNode[e.Node] = sp
		if latest == nil || e.At >= latest.Event.At {
			latest = sp
		}
	}
	names := make([]string, 0, len(nodes))
	for n := range nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	t := &TraceTree{ID: id, Root: root, Nodes: names}
	if len(events) > 0 {
		t.Start = events[0].At
		t.Total = events[len(events)-1].At - events[0].At
	}
	return t
}

// Walk visits every span of the tree depth-first in causal order.
func (t *TraceTree) Walk(visit func(depth int, s *TraceSpan)) {
	if t == nil || t.Root == nil {
		return
	}
	var rec func(int, *TraceSpan)
	rec = func(depth int, s *TraceSpan) {
		visit(depth, s)
		for _, c := range s.Children {
			rec(depth+1, c)
		}
	}
	rec(0, t.Root)
}

// FormatTree renders one assembled trace as an indented per-hop latency
// breakdown:
//
//	trace 8f3a... 3 nodes total=1.2ms
//	  0s        n2           stage propose ...
//	    +301µs  n1           hop append index=4
//	      +98µs n3           hop replicate index=4
func FormatTree(t *TraceTree) string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %016x nodes=%s total=%s\n", t.ID, strings.Join(t.Nodes, ","), t.Total)
	t.Walk(func(depth int, s *TraceSpan) {
		gap := "0s"
		if depth > 0 {
			gap = "+" + s.Gap.String()
		}
		fmt.Fprintf(&b, "%s%-10s %-14s %s\n",
			strings.Repeat("  ", depth+1), gap, s.Event.Node, s.Event.String())
	})
	return b.String()
}

// FormatTrees renders every tree, blank-line separated.
func FormatTrees(trees []*TraceTree) string {
	parts := make([]string, len(trees))
	for i, t := range trees {
		parts[i] = FormatTree(t)
	}
	return strings.Join(parts, "\n")
}
