// Package trace is the protocol flight recorder shared by every consensus
// core: a fixed-size ring buffer of typed protocol events (role
// transitions, election rounds, append dispatch and acknowledgment,
// snapshot streams, read batches, sessions, C-Raft batch hops) with
// monotonic sequence numbers, plus per-proposal lifecycle spans that stamp
// each stage a proposal passes through (propose → append → replicate →
// quorum → commit → apply) and fold the stage latencies into
// "hist.stage_*" histograms.
//
// The recorder exists for forensics under dynamic networks: when a harness
// test fails under an adversarial schedule, aggregate counters say *how
// often* things happened but not *which* election interrupted *which*
// append round in what order. Rings from several nodes merge into one
// time-ordered narrative (Merge/Format), which is exactly what the harness
// dumps on failure.
//
// A nil *Recorder is the disabled recorder: every method is nil-safe and
// returns immediately, so cores thread an untyped nil through their config
// and the hot path pays one nil check — no allocation, no lock. The
// enabled path takes one small mutex per event (the ring must tolerate a
// concurrent Snapshot from outside the consensus goroutine).
package trace

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/hraft-io/hraft/internal/stats"
	"github.com/hraft-io/hraft/internal/types"
)

// EventType discriminates ring events.
type EventType uint8

// Event types. Arg/Arg2 carry type-specific payloads documented per
// constant.
const (
	// EvRoleChange: node changed role. Arg = role (types.Role), Peer = the
	// leader it follows (if any).
	EvRoleChange EventType = iota + 1
	// EvElectionStart: node started an election at Term.
	EvElectionStart
	// EvVote: node received a vote response. Peer = voter, Arg = 1 granted
	// / 0 refused.
	EvVote
	// EvElectionWon: node won the election at Term. Arg = votes counted.
	EvElectionWon
	// EvAppendDispatch: leader sent AppendEntries to Peer. Index = prev log
	// index anchor, Arg = entry count, Arg2 = heartbeat round.
	EvAppendDispatch
	// EvAppendAck: Peer acknowledged appends up to Index. Arg2 = round.
	EvAppendAck
	// EvAppendReject: Peer failed the consistency check; Index = its
	// last-index hint.
	EvAppendReject
	// EvSnapStreamStart: leader started streaming its snapshot (boundary
	// Index) to Peer.
	EvSnapStreamStart
	// EvSnapChunk: leader sent one snapshot chunk to Peer. Index =
	// boundary, Arg = byte offset, Arg2 = 1 on the final chunk.
	EvSnapChunk
	// EvSnapChunkRecv: follower buffered a chunk from Peer. Index =
	// boundary, Arg = acknowledged contiguous bytes.
	EvSnapChunkRecv
	// EvSnapResume: leader continued a predecessor's stream to Peer from
	// byte Arg (boundary Index).
	EvSnapResume
	// EvSnapInstall: follower installed a snapshot at boundary Index.
	// Arg = install duration in microseconds.
	EvSnapInstall
	// EvReadStamp: leader sealed a read batch onto a broadcast round.
	// Arg = batch ID (ReadCtx), Arg2 = reads in the batch.
	EvReadStamp
	// EvReadConfirm: a quorum of acks confirmed batch Arg.
	EvReadConfirm
	// EvReadServe: a read resolved. Arg = read token, Index = its
	// linearization index, Arg2 = 0 failed / 1 ok.
	EvReadServe
	// EvSessionOpen: a session-open entry applied; Arg = session ID.
	EvSessionOpen
	// EvSessionExpire: a session clock entry applied; Arg = live sessions
	// after expiry.
	EvSessionExpire
	// EvBatchPropose: C-Raft packed locally committed entries into a global
	// batch. PID = the batch's proposal, Arg = entry count.
	EvBatchPropose
	// EvGlobalOrder: C-Raft observed a batch committed in the global order.
	// Arg = era, Arg2 = sequence within the era.
	EvGlobalOrder
	// EvReplay: C-Raft replayed a globally ordered batch into the local
	// delivery stream. Arg = era, Arg2 = sequence.
	EvReplay
	// EvStage: a proposal lifecycle span stamped a stage. PID = the
	// proposal, Arg = stage (Stage), Index = log index when known.
	EvStage
	// EvSlowOp: a proposal exceeded the slow-op threshold. PID = the
	// proposal, Index = commit index, Arg = total microseconds.
	EvSlowOp
	// EvBoot: the instance (re)started from durable state. Term = the
	// restored term, Index = the restored commit index (the snapshot
	// boundary when one was restored). The epoch marker: per-node
	// commit/apply monotonicity restarts here, because a rebooted node
	// legitimately recommits from its snapshot boundary.
	EvBoot
	// EvCommitEntry: the commit index covered the entry at Index. Arg = a
	// 64-bit digest of the entry's identity (EntryDigest) — the cross-node
	// committed-prefix agreement key.
	EvCommitEntry
	// EvApplySession: a session-scoped entry applied (not a duplicate).
	// Index = log index, Arg = session ID, Arg2 = session sequence.
	EvApplySession
	// EvLeaseExtend: the leader extended its serving lease. Peer = the
	// leaseholder identity (the cluster at the C-Raft global level), Arg =
	// the lease deadline in nanoseconds of node-monotonic time.
	EvLeaseExtend
	// EvLeaseRevoke: the leader dropped its lease. Peer = the holder.
	EvLeaseRevoke
	// EvCompact: the log was compacted. Index = the new snapshot boundary,
	// Arg = the commit index at compaction time (the boundary must never
	// exceed it).
	EvCompact
	// EvFsyncBatch: one group-commit batch became durable. Arg = records
	// in the batch, Arg2 = bytes written. Its distribution also feeds the
	// hist.fsync_batch_size histogram.
	EvFsyncBatch
	// EvTraceHop: a sampled proposal/read/snapshot crossed a protocol hop
	// on this node. Trace = the trace ID, Arg = the hop kind (HopKind),
	// Peer = the other party when the hop has one, Index = the log
	// position involved. Hops are the cross-node glue: each node a traced
	// operation touches records them into its own ring, and
	// AssembleTraces stitches the merged rings back into one causal tree.
	EvTraceHop
)

// evMaxType is the highest defined event type (decode tables).
const evMaxType = EvTraceHop

// String names the event type.
func (t EventType) String() string {
	switch t {
	case EvRoleChange:
		return "role"
	case EvElectionStart:
		return "election.start"
	case EvVote:
		return "election.vote"
	case EvElectionWon:
		return "election.won"
	case EvAppendDispatch:
		return "append.dispatch"
	case EvAppendAck:
		return "append.ack"
	case EvAppendReject:
		return "append.reject"
	case EvSnapStreamStart:
		return "snap.stream"
	case EvSnapChunk:
		return "snap.chunk"
	case EvSnapChunkRecv:
		return "snap.recv"
	case EvSnapResume:
		return "snap.resume"
	case EvSnapInstall:
		return "snap.install"
	case EvReadStamp:
		return "read.stamp"
	case EvReadConfirm:
		return "read.confirm"
	case EvReadServe:
		return "read.serve"
	case EvSessionOpen:
		return "session.open"
	case EvSessionExpire:
		return "session.expire"
	case EvBatchPropose:
		return "craft.batch"
	case EvGlobalOrder:
		return "craft.global_order"
	case EvReplay:
		return "craft.replay"
	case EvStage:
		return "stage"
	case EvSlowOp:
		return "slow_op"
	case EvBoot:
		return "boot"
	case EvCommitEntry:
		return "commit.entry"
	case EvApplySession:
		return "session.apply"
	case EvLeaseExtend:
		return "lease.extend"
	case EvLeaseRevoke:
		return "lease.revoke"
	case EvCompact:
		return "compact"
	case EvFsyncBatch:
		return "fsync.batch"
	case EvTraceHop:
		return "trace.hop"
	default:
		return fmt.Sprintf("event(%d)", uint8(t))
	}
}

// HopKind names the protocol hop an EvTraceHop event records.
type HopKind uint8

// Hop kinds. The per-stage EvStage events (origin node) and EvCommitEntry
// (every node, trace-stamped) carry the rest of the journey; these cover
// the transitions the span machinery cannot see because they happen on
// nodes that never opened the span.
const (
	// HopForward: a non-leader forwarded the proposal to Peer (the leader).
	HopForward HopKind = iota + 1
	// HopAppend: the leader appended the traced entry at Index.
	HopAppend
	// HopReplicate: a follower appended the traced entry at Index into its
	// own log (received from Peer when known).
	HopReplicate
	// HopAck: Peer acknowledged replication of the traced entry at Index
	// back to the leader.
	HopAck
	// HopReadForward: a follower forwarded the traced read to Peer.
	HopReadForward
	// HopReadServe: the read resolved at linearization Index (Arg2-free;
	// the companion EvReadServe event carries ok/failed).
	HopReadServe
	// HopBatch: C-Raft packed the traced entry into a global batch.
	HopBatch
	// HopGlobalOrder: the traced batch committed in the global order at
	// Index (the global log index).
	HopGlobalOrder
	// HopReplay: C-Raft replayed the traced entry out of a globally
	// ordered batch into the local delivery stream.
	HopReplay
	// HopSnapChunk: a snapshot chunk of the traced stream arrived from
	// Peer (Index = boundary).
	HopSnapChunk
	// HopSnapInstall: the traced snapshot stream installed at boundary
	// Index.
	HopSnapInstall
)

// String names the hop kind.
func (h HopKind) String() string {
	switch h {
	case HopForward:
		return "forward"
	case HopAppend:
		return "append"
	case HopReplicate:
		return "replicate"
	case HopAck:
		return "ack"
	case HopReadForward:
		return "read.forward"
	case HopReadServe:
		return "read.serve"
	case HopBatch:
		return "batch"
	case HopGlobalOrder:
		return "global_order"
	case HopReplay:
		return "replay"
	case HopSnapChunk:
		return "snap.chunk"
	case HopSnapInstall:
		return "snap.install"
	default:
		return fmt.Sprintf("hop(%d)", uint8(h))
	}
}

// eventTypeNames maps the wire names String/MarshalJSON emit back to
// event types, for decoding offline dumps.
var eventTypeNames = func() map[string]EventType {
	m := make(map[string]EventType, int(evMaxType))
	for t := EvRoleChange; t <= evMaxType; t++ {
		m[t.String()] = t
	}
	return m
}()

// Event is one recorded protocol event. Events are fixed-size values: the
// ring pre-allocates its storage and recording never allocates.
type Event struct {
	// Seq orders events within one ring (monotonic, never reused).
	Seq uint64 `json:"seq"`
	// At is the node's monotonic (virtual on the simulator) time.
	At time.Duration `json:"at"`
	// Node labels the recording instance ("n1", "n1/global", ...).
	Node string `json:"node"`
	// Group names the log this instance participates in ("" = the flat
	// cluster log; C-Raft stamps "local/<cluster>" and "global"), so
	// merged dumps stay self-describing for group-scoped invariants.
	Group string `json:"group,omitempty"`
	// Type discriminates the event.
	Type EventType `json:"type"`
	// Term is the recording node's term at the event.
	Term types.Term `json:"term,omitempty"`
	// Peer is the other party, when the event has one.
	Peer types.NodeID `json:"peer,omitempty"`
	// Index is the log position involved, when the event has one.
	Index types.Index `json:"index,omitempty"`
	// PID is the proposal involved, when the event has one.
	PID types.ProposalID `json:"pid,omitempty"`
	// Trace is the sampled trace ID this event belongs to (0 = untraced).
	// Stamped on EvTraceHop always, and on EvStage/EvSlowOp/EvCommitEntry/
	// EvReadServe when the operation was sampled.
	Trace uint64 `json:"trace,omitempty"`
	// Arg and Arg2 carry type-specific payloads (see the EventType docs).
	Arg  uint64 `json:"arg,omitempty"`
	Arg2 uint64 `json:"arg2,omitempty"`
}

// MarshalJSON renders the event type by name ("role", "append.ack", ...)
// and omits zero proposal IDs, keeping the debug-endpoint JSON
// self-describing without a decoder ring.
func (e Event) MarshalJSON() ([]byte, error) {
	type alias Event // sheds the method, avoiding recursion
	aux := struct {
		alias
		Type string            `json:"type"`
		PID  *types.ProposalID `json:"pid,omitempty"`
	}{alias: alias(e), Type: e.Type.String()}
	if !e.PID.IsZero() {
		aux.PID = &e.PID
	}
	return json.Marshal(aux)
}

// UnmarshalJSON decodes the MarshalJSON form (event type by name), so
// offline tools can replay dumped traces.
func (e *Event) UnmarshalJSON(data []byte) error {
	type alias Event // sheds the methods, avoiding recursion
	aux := struct {
		*alias
		Type string `json:"type"`
	}{alias: (*alias)(e)}
	if err := json.Unmarshal(data, &aux); err != nil {
		return err
	}
	t, ok := eventTypeNames[aux.Type]
	if !ok {
		return fmt.Errorf("trace: unknown event type %q", aux.Type)
	}
	e.Type = t
	return nil
}

// String renders the event as one human-readable line (without the node
// label and timestamp, which Format prepends).
func (e Event) String() string {
	switch e.Type {
	case EvRoleChange:
		s := fmt.Sprintf("-> %s term=%d", types.Role(e.Arg), e.Term)
		if e.Peer != types.None {
			s += fmt.Sprintf(" leader=%s", e.Peer)
		}
		return s
	case EvElectionStart:
		return fmt.Sprintf("election started term=%d", e.Term)
	case EvVote:
		verdict := "refused"
		if e.Arg == 1 {
			verdict = "granted"
		}
		return fmt.Sprintf("vote %s by %s term=%d", verdict, e.Peer, e.Term)
	case EvElectionWon:
		return fmt.Sprintf("election won term=%d votes=%d", e.Term, e.Arg)
	case EvAppendDispatch:
		return fmt.Sprintf("append -> %s prev=%d entries=%d round=%d", e.Peer, e.Index, e.Arg, e.Arg2)
	case EvAppendAck:
		return fmt.Sprintf("ack <- %s match=%d round=%d", e.Peer, e.Index, e.Arg2)
	case EvAppendReject:
		return fmt.Sprintf("reject <- %s hint=%d", e.Peer, e.Index)
	case EvSnapStreamStart:
		return fmt.Sprintf("snapshot stream -> %s boundary=%d", e.Peer, e.Index)
	case EvSnapChunk:
		done := ""
		if e.Arg2 == 1 {
			done = " done"
		}
		return fmt.Sprintf("snapshot chunk -> %s boundary=%d off=%d%s", e.Peer, e.Index, e.Arg, done)
	case EvSnapChunkRecv:
		return fmt.Sprintf("snapshot chunk <- %s boundary=%d acked=%d", e.Peer, e.Index, e.Arg)
	case EvSnapResume:
		return fmt.Sprintf("snapshot resume -> %s boundary=%d off=%d", e.Peer, e.Index, e.Arg)
	case EvSnapInstall:
		return fmt.Sprintf("snapshot installed boundary=%d took=%s", e.Index, time.Duration(e.Arg)*time.Microsecond)
	case EvReadStamp:
		return fmt.Sprintf("read batch stamped ctx=%d reads=%d", e.Arg, e.Arg2)
	case EvReadConfirm:
		return fmt.Sprintf("read batch confirmed ctx=%d", e.Arg)
	case EvReadServe:
		if e.Arg2 == 0 {
			return fmt.Sprintf("read failed token=%d", e.Arg)
		}
		return fmt.Sprintf("read served token=%d index=%d", e.Arg, e.Index)
	case EvSessionOpen:
		return fmt.Sprintf("session opened id=%d", e.Arg)
	case EvSessionExpire:
		return fmt.Sprintf("session clock applied live=%d", e.Arg)
	case EvBatchPropose:
		return fmt.Sprintf("batch proposed %s entries=%d", e.PID, e.Arg)
	case EvGlobalOrder:
		return fmt.Sprintf("batch ordered globally era=%d seq=%d", e.Arg, e.Arg2)
	case EvReplay:
		return fmt.Sprintf("batch replayed era=%d seq=%d", e.Arg, e.Arg2)
	case EvStage:
		return fmt.Sprintf("%s %s index=%d term=%d", Stage(e.Arg), e.PID, e.Index, e.Term)
	case EvSlowOp:
		return fmt.Sprintf("SLOW %s index=%d term=%d total=%s", e.PID, e.Index, e.Term, time.Duration(e.Arg)*time.Microsecond)
	case EvBoot:
		return fmt.Sprintf("boot term=%d commit=%d", e.Term, e.Index)
	case EvCommitEntry:
		return fmt.Sprintf("committed index=%d digest=%016x", e.Index, e.Arg)
	case EvApplySession:
		return fmt.Sprintf("session apply index=%d session=%d seq=%d", e.Index, e.Arg, e.Arg2)
	case EvLeaseExtend:
		return fmt.Sprintf("lease extended holder=%s until=%s", e.Peer, time.Duration(e.Arg))
	case EvLeaseRevoke:
		return fmt.Sprintf("lease revoked holder=%s", e.Peer)
	case EvCompact:
		return fmt.Sprintf("compacted boundary=%d commit=%d", e.Index, e.Arg)
	case EvFsyncBatch:
		return fmt.Sprintf("fsync batch records=%d bytes=%d", e.Arg, e.Arg2)
	case EvTraceHop:
		s := fmt.Sprintf("hop %s trace=%016x", HopKind(e.Arg), e.Trace)
		if e.Peer != types.None {
			s += fmt.Sprintf(" peer=%s", e.Peer)
		}
		if e.Index != 0 {
			s += fmt.Sprintf(" index=%d", e.Index)
		}
		return s
	default:
		return e.Type.String()
	}
}

// Stage is one step of a proposal's lifecycle, in canonical order.
type Stage uint8

// Lifecycle stages. Protocols stamp the subset they pass through; the
// histogram for a stage measures the time since the previous *stamped*
// stage (Fast Raft's proposer broadcast can put replicate before append —
// negative gaps clamp to zero).
const (
	// StagePropose: the proposal entered the system.
	StagePropose Stage = iota
	// StageAppend: the entry reached the leader's log.
	StageAppend
	// StageReplicate: the entry (or proposal) was dispatched to peers.
	StageReplicate
	// StageQuorum: the decide/commit rule first covered the entry.
	StageQuorum
	// StageCommit: the commit index reached the entry.
	StageCommit
	// StageApply: the entry was released to the application.
	StageApply
	numStages
)

// String names the stage.
func (s Stage) String() string {
	switch s {
	case StagePropose:
		return "propose"
	case StageAppend:
		return "append"
	case StageReplicate:
		return "replicate"
	case StageQuorum:
		return "quorum"
	case StageCommit:
		return "commit"
	case StageApply:
		return "apply"
	default:
		return fmt.Sprintf("stage(%d)", uint8(s))
	}
}

// histNames are the flat metric names the stage histograms merge under
// (rendered by the public MetricsHandler as hraft_hist_stage_*_seconds).
var histNames = [numStages]string{
	"hist.stage_propose", // propose -> first subsequent stamp (queueing)
	"hist.stage_append",
	"hist.stage_replicate",
	"hist.stage_quorum",
	"hist.stage_commit",
	"hist.stage_apply",
}

// span accumulates the stage stamps of one proposal. stamped bit i covers
// Stage(i).
type span struct {
	at      [numStages]time.Duration
	stamped uint8
	term    types.Term
	// trace is the sampled trace ID bound at SpanStart (0 = unsampled);
	// every EvStage/EvSlowOp event the span emits carries it.
	trace uint64
}

// defaultSize is the ring capacity when Config.Size is unset: enough to
// hold several election cycles of a busy five-node cluster.
const defaultSize = 4096

// defaultSpanCap bounds the live proposal spans tracked per recorder;
// beyond it new proposals go unspanned (ring events still record).
const defaultSpanCap = 4096

// ring is the shared event storage behind one or more Recorder labels. One
// mutex guards everything — events, spans and histograms — because the
// writers (the consensus goroutine) and readers (debug endpoints, harness
// dumps) are different goroutines. Sinks live on the ring so a sink
// attached through any label observes every label sharing it.
type ring struct {
	mu    sync.Mutex
	buf   []Event
	seq   uint64
	sinks []func(Event)
	// mints counts MintTrace calls across every recorder sharing the ring
	// (the deterministic every-Nth sampler state).
	mints uint64
	// dropped accumulates events an incremental reader (SnapshotSince)
	// lost to ring wraparound; lastDropped is the most recent gap — the
	// counter/gauge pair behind trace.events_dropped.
	dropped     uint64
	lastDropped uint64
	// rolling holds the per-group sliding-window aggregates over completed
	// proposal spans (rate/p50/p99 for the live /debug/hraft/top plane),
	// keyed by the recorder group label at span end.
	rolling map[string]*stats.Rolling
}

// Config parametrizes a Recorder.
type Config struct {
	// Node labels this recorder's events ("n1"; C-Raft derives "n1/global"
	// etc. via Derive).
	Node string
	// Group names the log this recorder's instance participates in
	// (stamped on every event; see Event.Group). Usually left empty and
	// set later via SetGroup by the owning core.
	Group string
	// Size is the ring capacity in events (0 = the HRAFT_TRACE_RING
	// environment variable, or 4096 when that is unset too).
	Size int
	// SlowOp, when non-zero, logs any proposal whose propose→apply span
	// meets the threshold through Logger, naming the proposal, term, index,
	// peers and the per-stage breakdown.
	SlowOp time.Duration
	// Logger receives slow-op reports (nil = slog.Default()).
	Logger *slog.Logger
	// SampleRate enables wire-propagated causal tracing: every SampleRate-th
	// proposal/read minted through this recorder gets a TraceID that rides
	// the wire (codec v8) and is recorded as hop events on every node it
	// touches. 0 disables sampling (no trace context on the wire); 1
	// samples everything. The sampler is a deterministic counter, not a
	// random draw, so simulated runs trace reproducibly.
	SampleRate int
}

// Recorder records protocol events into a ring and tracks proposal
// lifecycle spans. The zero-value pointer (nil) is the disabled recorder:
// every method no-ops. Construct with New; share the ring across layers
// with Derive.
type Recorder struct {
	r     *ring
	label string
	group string
	slow  time.Duration
	log   *slog.Logger
	// peersFn, when set, names the current peer set in slow-op reports
	// (evaluated only on the slow path).
	peersFn func() []types.NodeID

	// sampleEvery is the mint period (Config.SampleRate; 0 = minting off).
	sampleEvery uint64
	// labelHash seeds minted trace IDs so two origins minting the same
	// counter value still produce distinct IDs.
	labelHash uint64
	// traced tracks the leader-side sampled entries awaiting per-peer
	// replication acks (HopAck attribution); bounded by tracedCap.
	traced []tracedEntry

	spans    map[types.ProposalID]*span
	spanFIFO []types.ProposalID
	hists    [numStages]*stats.TimingHist
	total    *stats.TimingHist
	// fsyncSize distributes group-commit batch sizes (records per fsync);
	// applyLag distributes commit→apply hand-off delay through the
	// runtime's apply pipeline.
	fsyncSize *stats.SizeHist
	applyLag  *stats.TimingHist
}

// New builds an enabled recorder.
func New(cfg Config) *Recorder {
	size := cfg.Size
	if size <= 0 {
		size = RingSizeFromEnv()
	}
	if size <= 0 {
		size = defaultSize
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.Default()
	}
	rec := &Recorder{
		r:           &ring{buf: make([]Event, size), rolling: make(map[string]*stats.Rolling)},
		label:       cfg.Node,
		group:       cfg.Group,
		slow:        cfg.SlowOp,
		log:         logger,
		spans:       make(map[types.ProposalID]*span),
		labelHash:   fnvString(cfg.Node),
		sampleEvery: uint64(max(cfg.SampleRate, 0)),
	}
	rec.initHists()
	return rec
}

// fnvString is FNV-1a over a string (trace-ID seeding).
func fnvString(s string) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// RingSizeFromEnv returns the ring capacity requested through the
// HRAFT_TRACE_RING environment variable (0 = unset or invalid). Long
// torture-style runs raise it so the pre-violation window is not lost to
// ring wraparound at the 4096-event default.
func RingSizeFromEnv() int {
	v := os.Getenv("HRAFT_TRACE_RING")
	if v == "" {
		return 0
	}
	n, err := strconv.Atoi(v)
	if err != nil || n <= 0 {
		return 0
	}
	return n
}

func (r *Recorder) initHists() {
	for i := range r.hists {
		r.hists[i] = stats.NewTimingHist(histNames[i], stats.DefaultLatencyBounds()...)
	}
	r.total = stats.NewTimingHist("hist.stage_total", stats.DefaultLatencyBounds()...)
	r.fsyncSize = stats.NewSizeHist("hist.fsync_batch_size", stats.DefaultSizeBounds()...)
	r.applyLag = stats.NewTimingHist("hist.apply_lag", stats.DefaultLatencyBounds()...)
}

// Derive returns a recorder sharing this one's ring (and sequence space)
// under a different node label, with its own span tracking and stage
// histograms — how C-Raft gives its local, global and coordination layers
// one interleaved event narrative. Nil-safe: deriving from the disabled
// recorder stays disabled.
func (r *Recorder) Derive(label string) *Recorder {
	if r == nil {
		return nil
	}
	d := &Recorder{
		r:           r.r,
		label:       label,
		group:       r.group,
		slow:        r.slow,
		log:         r.log,
		spans:       make(map[types.ProposalID]*span),
		labelHash:   fnvString(label),
		sampleEvery: r.sampleEvery,
	}
	d.initHists()
	return d
}

// SetGroup names the log group stamped on this recorder's subsequent
// events (see Event.Group). The owning core calls it once at construction;
// nil-safe.
func (r *Recorder) SetGroup(group string) {
	if r == nil {
		return
	}
	r.r.mu.Lock()
	r.group = group
	r.r.mu.Unlock()
}

// Group returns the recorder's log-group tag ("" when disabled or untagged).
func (r *Recorder) Group() string {
	if r == nil {
		return ""
	}
	return r.group
}

// Attach subscribes fn to every event recorded into this recorder's ring —
// including events from recorders Derive'd from it, which share the ring.
// fn runs synchronously under the ring lock, in recording order: it must
// be fast and must not call back into any recorder sharing the ring.
// Nil-safe (attaching to the disabled recorder is a no-op).
func (r *Recorder) Attach(fn func(Event)) {
	if r == nil || fn == nil {
		return
	}
	r.r.mu.Lock()
	r.r.sinks = append(r.r.sinks, fn)
	r.r.mu.Unlock()
}

// Label returns the recorder's node label ("" when disabled).
func (r *Recorder) Label() string {
	if r == nil {
		return ""
	}
	return r.label
}

// SetPeersFunc installs the callback naming the current peer set in
// slow-op reports. Evaluated only when a slow op fires.
func (r *Recorder) SetPeersFunc(f func() []types.NodeID) {
	if r == nil {
		return
	}
	r.r.mu.Lock()
	r.peersFn = f
	r.r.mu.Unlock()
}

// record appends one event under the lock. Callers fill everything but
// Seq, Node and Group. The deferred unlock matters: a strict-mode audit
// sink may panic out of recordLocked, and the ring must stay usable for
// the post-mortem dump.
func (r *Recorder) record(e Event) {
	r.r.mu.Lock()
	defer r.r.mu.Unlock()
	r.recordLocked(e)
}

func (r *Recorder) recordLocked(e Event) {
	e.Seq = r.r.seq
	e.Node = r.label
	e.Group = r.group
	r.r.buf[r.r.seq%uint64(len(r.r.buf))] = e
	r.r.seq++
	for _, fn := range r.r.sinks {
		fn(e)
	}
}

// Snapshot copies the ring's retained events in recording order (oldest
// first). Safe to call from any goroutine; nil-safe (returns nil).
func (r *Recorder) Snapshot() []Event {
	if r == nil {
		return nil
	}
	r.r.mu.Lock()
	defer r.r.mu.Unlock()
	n := uint64(len(r.r.buf))
	if r.r.seq <= n {
		return append([]Event(nil), r.r.buf[:r.r.seq]...)
	}
	out := make([]Event, 0, n)
	start := r.r.seq % n
	out = append(out, r.r.buf[start:]...)
	out = append(out, r.r.buf[:start]...)
	return out
}

// SnapshotSince returns the retained events with Seq >= since, oldest
// first, plus the number of events the ring overwrote past the caller's
// cursor (0 when the cursor is still inside the retained window). The
// drop count also feeds the cumulative trace.events_dropped counter and
// its last-gap gauge, so silent wraparound shows up in Metrics() and
// Prometheus. Pollers resume with since = lastEvent.Seq+1. Nil-safe.
func (r *Recorder) SnapshotSince(since uint64) ([]Event, uint64) {
	if r == nil {
		return nil, 0
	}
	r.r.mu.Lock()
	defer r.r.mu.Unlock()
	n := uint64(len(r.r.buf))
	var floor uint64
	if r.r.seq > n {
		floor = r.r.seq - n
	}
	var dropped uint64
	if since < floor {
		dropped = floor - since
		r.r.dropped += dropped
		r.r.lastDropped = dropped
		since = floor
	}
	if since >= r.r.seq {
		return nil, dropped
	}
	out := make([]Event, 0, r.r.seq-since)
	for s := since; s < r.r.seq; s++ {
		out = append(out, r.r.buf[s%n])
	}
	return out, dropped
}

// Tail returns the newest k retained events, oldest first.
func (r *Recorder) Tail(k int) []Event {
	s := r.Snapshot()
	if len(s) > k {
		s = s[len(s)-k:]
	}
	return s
}

// Len returns the number of events recorded so far (including overwritten
// ones); tests and diagnostics.
func (r *Recorder) Len() uint64 {
	if r == nil {
		return 0
	}
	r.r.mu.Lock()
	defer r.r.mu.Unlock()
	return r.r.seq
}

// MergeMetrics folds the recorder's stage histograms into a flat counter
// snapshot under prefix (the scheme TimingHist.MergeInto documents), so
// node Metrics() maps pick them up with no extra rendering code. Nil-safe.
func (r *Recorder) MergeMetrics(dst map[string]uint64, prefix string) {
	if r == nil {
		return
	}
	r.r.mu.Lock()
	defer r.r.mu.Unlock()
	for _, h := range r.hists {
		if h.Count() > 0 {
			h.MergeInto(dst, prefix)
		}
	}
	if r.total.Count() > 0 {
		r.total.MergeInto(dst, prefix)
	}
	if r.fsyncSize.Count() > 0 {
		r.fsyncSize.MergeInto(dst, prefix)
	}
	if r.applyLag.Count() > 0 {
		r.applyLag.MergeInto(dst, prefix)
	}
	if r.r.dropped > 0 {
		dst[prefix+"trace.events_dropped"] = r.r.dropped
		dst[prefix+"trace.gauge.events_dropped_last"] = r.r.lastDropped
	}
}

// --- Typed record methods (all nil-safe) ------------------------------------

// RoleChange records a role transition.
func (r *Recorder) RoleChange(now time.Duration, term types.Term, role types.Role, leader types.NodeID) {
	if r == nil {
		return
	}
	r.record(Event{At: now, Type: EvRoleChange, Term: term, Arg: uint64(role), Peer: leader})
}

// ElectionStart records the start of an election round.
func (r *Recorder) ElectionStart(now time.Duration, term types.Term) {
	if r == nil {
		return
	}
	r.record(Event{At: now, Type: EvElectionStart, Term: term})
}

// Vote records a vote response from peer.
func (r *Recorder) Vote(now time.Duration, term types.Term, peer types.NodeID, granted bool) {
	if r == nil {
		return
	}
	var g uint64
	if granted {
		g = 1
	}
	r.record(Event{At: now, Type: EvVote, Term: term, Peer: peer, Arg: g})
}

// ElectionWon records an election win with the counted votes. self is the
// winner's protocol identity (at the C-Raft global level that is the
// cluster, not the site) — the key election-safety auditing compares on,
// since two sites of one cluster may legitimately win the same global
// term.
func (r *Recorder) ElectionWon(now time.Duration, term types.Term, self types.NodeID, votes int) {
	if r == nil {
		return
	}
	r.record(Event{At: now, Type: EvElectionWon, Term: term, Peer: self, Arg: uint64(votes)})
}

// AppendDispatch records one AppendEntries transmission to peer.
func (r *Recorder) AppendDispatch(now time.Duration, term types.Term, peer types.NodeID, prev types.Index, entries int, round uint64) {
	if r == nil {
		return
	}
	r.record(Event{At: now, Type: EvAppendDispatch, Term: term, Peer: peer, Index: prev, Arg: uint64(entries), Arg2: round})
}

// AppendAck records a successful append acknowledgment from peer.
func (r *Recorder) AppendAck(now time.Duration, term types.Term, peer types.NodeID, match types.Index, round uint64) {
	if r == nil {
		return
	}
	r.record(Event{At: now, Type: EvAppendAck, Term: term, Peer: peer, Index: match, Arg2: round})
}

// AppendReject records a failed consistency check from peer.
func (r *Recorder) AppendReject(now time.Duration, term types.Term, peer types.NodeID, hint types.Index) {
	if r == nil {
		return
	}
	r.record(Event{At: now, Type: EvAppendReject, Term: term, Peer: peer, Index: hint})
}

// SnapStreamStart records the start of a snapshot stream to peer.
func (r *Recorder) SnapStreamStart(now time.Duration, term types.Term, peer types.NodeID, boundary types.Index) {
	if r == nil {
		return
	}
	r.record(Event{At: now, Type: EvSnapStreamStart, Term: term, Peer: peer, Index: boundary})
}

// SnapChunk records one snapshot chunk (or full-image) transmission.
func (r *Recorder) SnapChunk(now time.Duration, peer types.NodeID, boundary types.Index, offset uint64, done bool) {
	if r == nil {
		return
	}
	var d uint64
	if done {
		d = 1
	}
	r.record(Event{At: now, Type: EvSnapChunk, Peer: peer, Index: boundary, Arg: offset, Arg2: d})
}

// SnapChunkRecv records a buffered chunk on the follower side.
func (r *Recorder) SnapChunkRecv(now time.Duration, from types.NodeID, boundary types.Index, acked uint64) {
	if r == nil {
		return
	}
	r.record(Event{At: now, Type: EvSnapChunkRecv, Peer: from, Index: boundary, Arg: acked})
}

// SnapResume records a continued predecessor stream.
func (r *Recorder) SnapResume(now time.Duration, peer types.NodeID, boundary types.Index, offset uint64) {
	if r == nil {
		return
	}
	r.record(Event{At: now, Type: EvSnapResume, Peer: peer, Index: boundary, Arg: offset})
}

// SnapInstall records a completed snapshot install.
func (r *Recorder) SnapInstall(now time.Duration, boundary types.Index, took time.Duration) {
	if r == nil {
		return
	}
	r.record(Event{At: now, Type: EvSnapInstall, Index: boundary, Arg: uint64(took / time.Microsecond)})
}

// ReadStamp records a read batch sealed onto a broadcast round.
func (r *Recorder) ReadStamp(now time.Duration, ctx uint64, reads int) {
	if r == nil {
		return
	}
	r.record(Event{At: now, Type: EvReadStamp, Arg: ctx, Arg2: uint64(reads)})
}

// ReadConfirm records a batch confirmed by quorum.
func (r *Recorder) ReadConfirm(now time.Duration, ctx uint64) {
	if r == nil {
		return
	}
	r.record(Event{At: now, Type: EvReadConfirm, Arg: ctx})
}

// ReadServe records a read resolution. tid is the read's sampled trace ID
// (0 = unsampled).
func (r *Recorder) ReadServe(now time.Duration, token uint64, index types.Index, ok bool, tid uint64) {
	if r == nil {
		return
	}
	var o uint64
	if ok {
		o = 1
	}
	r.record(Event{At: now, Type: EvReadServe, Arg: token, Index: index, Trace: tid, Arg2: o})
}

// SessionOpen records a session registration apply.
func (r *Recorder) SessionOpen(now time.Duration, id uint64) {
	if r == nil {
		return
	}
	r.record(Event{At: now, Type: EvSessionOpen, Arg: id})
}

// SessionExpire records a session clock apply with the surviving count.
func (r *Recorder) SessionExpire(now time.Duration, live int) {
	if r == nil {
		return
	}
	r.record(Event{At: now, Type: EvSessionExpire, Arg: uint64(live)})
}

// BatchPropose records a C-Raft global batch proposal.
func (r *Recorder) BatchPropose(now time.Duration, pid types.ProposalID, entries int) {
	if r == nil {
		return
	}
	r.record(Event{At: now, Type: EvBatchPropose, PID: pid, Arg: uint64(entries)})
}

// GlobalOrder records a batch committed in the global order.
func (r *Recorder) GlobalOrder(now time.Duration, era, seq uint64) {
	if r == nil {
		return
	}
	r.record(Event{At: now, Type: EvGlobalOrder, Arg: era, Arg2: seq})
}

// Replay records a globally ordered batch replayed locally.
func (r *Recorder) Replay(now time.Duration, era, seq uint64) {
	if r == nil {
		return
	}
	r.record(Event{At: now, Type: EvReplay, Arg: era, Arg2: seq})
}

// Boot records a (re)start from durable state: the epoch marker that
// resets per-node monotonicity auditing (a rebooted node recommits from
// its snapshot boundary).
func (r *Recorder) Boot(now time.Duration, term types.Term, commit types.Index) {
	if r == nil {
		return
	}
	r.record(Event{At: now, Type: EvBoot, Term: term, Index: commit})
}

// CommitEntry records the commit index covering e, keyed by the entry's
// identity digest so committed-prefix agreement is checkable across nodes
// and offline.
func (r *Recorder) CommitEntry(now time.Duration, term types.Term, e types.Entry) {
	if r == nil {
		return
	}
	r.record(Event{At: now, Type: EvCommitEntry, Term: term, Index: e.Index, PID: e.PID, Trace: e.TraceID, Arg: EntryDigest(e)})
}

// ApplySession records a non-duplicate session-scoped apply.
func (r *Recorder) ApplySession(now time.Duration, index types.Index, session, seq uint64) {
	if r == nil {
		return
	}
	r.record(Event{At: now, Type: EvApplySession, Index: index, Arg: session, Arg2: seq})
}

// LeaseExtend records the serving lease pushed out to until. self is the
// leaseholder's protocol identity (the cluster at the C-Raft global
// level).
func (r *Recorder) LeaseExtend(now time.Duration, self types.NodeID, until time.Duration) {
	if r == nil {
		return
	}
	r.record(Event{At: now, Type: EvLeaseExtend, Peer: self, Arg: uint64(until)})
}

// LeaseRevoke records the lease dropped before its deadline.
func (r *Recorder) LeaseRevoke(now time.Duration, self types.NodeID) {
	if r == nil {
		return
	}
	r.record(Event{At: now, Type: EvLeaseRevoke, Peer: self})
}

// Compact records a log compaction: boundary must never exceed the commit
// index at compaction time.
func (r *Recorder) Compact(now time.Duration, boundary types.Index, commit types.Index) {
	if r == nil {
		return
	}
	r.record(Event{At: now, Type: EvCompact, Index: boundary, Arg: uint64(commit)})
}

// FsyncBatch records one durable group-commit batch (records and bytes it
// carried) and feeds the batch-size histogram. Unlike the span methods it
// is called from the storage flush goroutine, so the histogram update
// shares the ring lock.
func (r *Recorder) FsyncBatch(now time.Duration, records, bytes int) {
	if r == nil {
		return
	}
	r.r.mu.Lock()
	defer r.r.mu.Unlock()
	r.fsyncSize.Observe(uint64(records))
	r.recordLocked(Event{At: now, Type: EvFsyncBatch, Arg: uint64(records), Arg2: uint64(bytes)})
}

// ApplyLag feeds the commit→apply pipeline delay histogram (no ring event:
// it fires once per delivered commit batch and would drown the narrative).
func (r *Recorder) ApplyLag(d time.Duration) {
	if r == nil {
		return
	}
	r.r.mu.Lock()
	defer r.r.mu.Unlock()
	r.applyLag.Observe(d)
}

// EntryDigest summarizes an entry's identity as a 64-bit FNV-1a digest
// over (Kind, PID, Session, SessionSeq, Data) — the same identity notion
// the harness SafetyChecker compares, so two nodes committing different
// values at one index digest apart. Term and Approval are excluded: they
// are leader-stamped bookkeeping, not proposal identity.
func EntryDigest(e types.Entry) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	byteIn := func(b byte) {
		h ^= uint64(b)
		h *= prime
	}
	wordIn := func(v uint64) {
		for i := 0; i < 8; i++ {
			byteIn(byte(v >> (8 * i)))
		}
	}
	byteIn(byte(e.Kind))
	for i := 0; i < len(e.PID.Proposer); i++ {
		byteIn(e.PID.Proposer[i])
	}
	wordIn(e.PID.Seq)
	wordIn(uint64(e.Session))
	wordIn(e.SessionSeq)
	for _, b := range e.Data {
		byteIn(b)
	}
	return h
}

// --- Wire-propagated causal tracing ------------------------------------------

// tracedEntry is one leader-side sampled entry awaiting per-peer
// replication acks, so classic-Raft AppendEntriesResp messages (which name
// only a match index, not the entries) attribute HopAck events to the
// right trace.
type tracedEntry struct {
	index types.Index
	tid   uint64
	acked map[types.NodeID]bool
}

// tracedCap bounds the leader-side traced-entry table; sampled entries are
// sparse by construction, so overflow means a stuck window — drop oldest.
const tracedCap = 256

// MintTrace draws the next trace ID from the deterministic every-Nth
// sampler: 0 (unsampled — no wire bytes, no hop events) unless this is the
// SampleRate-th mint since the last sampled one. IDs mix the recorder's
// label hash with a ring-wide counter, so concurrent origins never
// collide. Nil-safe: the disabled recorder never samples.
func (r *Recorder) MintTrace() uint64 {
	if r == nil || r.sampleEvery == 0 {
		return 0
	}
	r.r.mu.Lock()
	defer r.r.mu.Unlock()
	r.r.mints++
	if r.r.mints%r.sampleEvery != 0 {
		return 0
	}
	const prime = 1099511628211
	id := (r.labelHash ^ r.r.mints) * prime
	if id == 0 {
		id = prime
	}
	return id
}

// Sampling reports whether this recorder mints trace IDs at all — the
// cores use it to skip per-entry bookkeeping entirely when tracing is off.
func (r *Recorder) Sampling() bool {
	return r != nil && r.sampleEvery > 0
}

// TraceHop records one hop of a sampled operation's journey across the
// cluster. No-op when tid is 0 (the unsampled fast path costs one compare)
// or the recorder is disabled.
func (r *Recorder) TraceHop(now time.Duration, tid uint64, hop HopKind, peer types.NodeID, index types.Index) {
	if r == nil || tid == 0 {
		return
	}
	r.record(Event{At: now, Type: EvTraceHop, Trace: tid, Arg: uint64(hop), Peer: peer, Index: index})
}

// TraceAppendIndex registers a sampled entry the leader just appended at
// index, so subsequent per-peer acks attribute to its trace (TraceAck).
// No-op for tid 0.
func (r *Recorder) TraceAppendIndex(index types.Index, tid uint64) {
	if r == nil || tid == 0 {
		return
	}
	r.r.mu.Lock()
	defer r.r.mu.Unlock()
	for i := range r.traced {
		if r.traced[i].index == index {
			r.traced[i].tid = tid
			return
		}
	}
	if len(r.traced) >= tracedCap {
		r.traced = r.traced[1:]
	}
	r.traced = append(r.traced, tracedEntry{index: index, tid: tid, acked: make(map[types.NodeID]bool)})
}

// TraceAck records a HopAck for every registered traced entry the peer's
// acknowledged match index newly covers (each peer acks each traced entry
// once).
func (r *Recorder) TraceAck(now time.Duration, peer types.NodeID, match types.Index) {
	if r == nil || len(r.traced) == 0 {
		return
	}
	r.r.mu.Lock()
	defer r.r.mu.Unlock()
	for i := range r.traced {
		t := &r.traced[i]
		if t.index > match || t.acked[peer] {
			continue
		}
		t.acked[peer] = true
		r.recordLocked(Event{At: now, Type: EvTraceHop, Trace: t.tid, Arg: uint64(HopAck), Peer: peer, Index: t.index})
	}
}

// TraceCommitted retires traced entries the commit index has covered (their
// replication story is complete; later acks are catch-up noise).
func (r *Recorder) TraceCommitted(commit types.Index) {
	if r == nil || len(r.traced) == 0 {
		return
	}
	r.r.mu.Lock()
	defer r.r.mu.Unlock()
	kept := r.traced[:0]
	for _, t := range r.traced {
		if t.index > commit {
			kept = append(kept, t)
		}
	}
	r.traced = kept
}

// --- Live sliding-window aggregates ------------------------------------------

// LiveStats snapshots the per-group sliding-window proposal aggregates
// (rate, p50, p99 over the last stats.RollingWindow) across every recorder
// sharing this ring. Keys are group labels ("" = the flat cluster log).
// Nil-safe (returns nil).
func (r *Recorder) LiveStats(now time.Duration) map[string]stats.RollingSnapshot {
	if r == nil {
		return nil
	}
	r.r.mu.Lock()
	defer r.r.mu.Unlock()
	if len(r.r.rolling) == 0 {
		return nil
	}
	out := make(map[string]stats.RollingSnapshot, len(r.r.rolling))
	for g, roll := range r.r.rolling {
		out[g] = roll.Snapshot(now)
	}
	return out
}

// observeRollingLocked feeds one completed proposal span into the group's
// sliding window. Caller holds the ring lock.
func (r *Recorder) observeRollingLocked(now, total time.Duration) {
	if r.r.rolling == nil {
		return
	}
	roll, ok := r.r.rolling[r.group]
	if !ok {
		roll = stats.NewRolling()
		r.r.rolling[r.group] = roll
	}
	roll.Observe(now, total)
}

// --- Proposal lifecycle spans ------------------------------------------------

// SpanStart opens a lifecycle span for pid, stamping StagePropose. tid
// binds the proposal's sampled trace ID (0 = unsampled) to every stage
// event the span emits. A full span table drops the oldest span (its
// proposal is likely stuck or forgotten) rather than the new one.
func (r *Recorder) SpanStart(now time.Duration, pid types.ProposalID, term types.Term, tid uint64) {
	if r == nil || pid.IsZero() {
		return
	}
	r.r.mu.Lock()
	defer r.r.mu.Unlock()
	if _, ok := r.spans[pid]; ok {
		return // re-propose under the same PID: keep the original stamps
	}
	for len(r.spans) >= defaultSpanCap && len(r.spanFIFO) > 0 {
		victim := r.spanFIFO[0]
		r.spanFIFO = r.spanFIFO[1:]
		delete(r.spans, victim)
	}
	sp := &span{term: term, trace: tid}
	sp.at[StagePropose] = now
	sp.stamped = 1 << StagePropose
	r.spans[pid] = sp
	r.spanFIFO = append(r.spanFIFO, pid)
	r.recordLocked(Event{At: now, Type: EvStage, Term: term, PID: pid, Trace: tid, Arg: uint64(StagePropose)})
}

// SpanStage stamps a lifecycle stage on pid's span (first stamp wins;
// unknown spans no-op, so followers never accumulate state for proposals
// they merely replicate).
func (r *Recorder) SpanStage(now time.Duration, pid types.ProposalID, stage Stage, index types.Index) {
	if r == nil || pid.IsZero() {
		return
	}
	r.r.mu.Lock()
	defer r.r.mu.Unlock()
	sp, ok := r.spans[pid]
	if !ok || sp.stamped&(1<<stage) != 0 {
		return
	}
	sp.at[stage] = now
	sp.stamped |= 1 << stage
	r.recordLocked(Event{At: now, Type: EvStage, Term: sp.term, PID: pid, Trace: sp.trace, Index: index, Arg: uint64(stage)})
}

// SpanEnd stamps StageApply, folds the stage gaps into the hist.stage_*
// histograms, emits the slow-op report when the total crosses the
// threshold, and forgets the span.
func (r *Recorder) SpanEnd(now time.Duration, pid types.ProposalID, index types.Index) {
	if r == nil || pid.IsZero() {
		return
	}
	slow, peers, term, stamps, stamped, total, tid := r.spanEndLocked(now, pid, index)
	if !slow {
		return
	}
	attrs := []any{
		"node", r.label,
		"proposal", pid.String(),
		"term", uint64(term),
		"index", uint64(index),
		"total", total,
	}
	if tid != 0 {
		attrs = append(attrs, "trace", fmt.Sprintf("%016x", tid))
	}
	p := stamps[StagePropose]
	for s := StageAppend; s < numStages; s++ {
		if stamped&(1<<s) == 0 {
			continue
		}
		gap := stamps[s] - p
		if gap < 0 {
			gap = 0
		}
		attrs = append(attrs, s.String(), gap)
		if stamps[s] > p {
			p = stamps[s]
		}
	}
	if len(peers) > 0 {
		names := make([]string, len(peers))
		for i, id := range peers {
			names[i] = string(id)
		}
		attrs = append(attrs, "peers", strings.Join(names, ","))
	}
	r.log.Warn("hraft: slow proposal", attrs...)
}

// spanEndLocked is SpanEnd's under-lock half: it folds the span into the
// histograms and reports whether a slow-op log line is due. The deferred
// unlock keeps the ring usable if a strict-mode audit sink panics out of
// recordLocked.
func (r *Recorder) spanEndLocked(now time.Duration, pid types.ProposalID, index types.Index) (slow bool, peers []types.NodeID, term types.Term, stamps [numStages]time.Duration, stamped uint8, total time.Duration, tid uint64) {
	r.r.mu.Lock()
	defer r.r.mu.Unlock()
	sp, ok := r.spans[pid]
	if !ok {
		return
	}
	delete(r.spans, pid)
	sp.at[StageApply] = now
	sp.stamped |= 1 << StageApply
	r.recordLocked(Event{At: now, Type: EvStage, Term: sp.term, PID: pid, Trace: sp.trace, Index: index, Arg: uint64(StageApply)})

	// Stage gap = time since the previous stamped stage, clamped at zero
	// (Fast Raft's proposer broadcast can stamp replicate before append).
	prev := sp.at[StagePropose]
	for s := StageAppend; s < numStages; s++ {
		if sp.stamped&(1<<s) == 0 {
			continue
		}
		gap := sp.at[s] - prev
		if gap < 0 {
			gap = 0
		}
		r.hists[s].Observe(gap)
		if sp.at[s] > prev {
			prev = sp.at[s]
		}
	}
	total = now - sp.at[StagePropose]
	r.total.Observe(total)
	r.observeRollingLocked(now, total)

	slow = r.slow > 0 && total >= r.slow
	if slow {
		r.recordLocked(Event{At: now, Type: EvSlowOp, Term: sp.term, PID: pid, Trace: sp.trace, Index: index, Arg: uint64(total / time.Microsecond)})
		if r.peersFn != nil {
			peers = r.peersFn()
		}
	}
	return slow, peers, sp.term, sp.at, sp.stamped, total, sp.trace
}

// SpanAbandon forgets a span without observing it (proposal failed or the
// node stepped down with it unresolved).
func (r *Recorder) SpanAbandon(pid types.ProposalID) {
	if r == nil || pid.IsZero() {
		return
	}
	r.r.mu.Lock()
	delete(r.spans, pid)
	r.r.mu.Unlock()
}

// --- Merging & formatting ----------------------------------------------------

// Merge combines event snapshots from several recorders into one sequence
// ordered by time (ties: node label, then sequence number), the shape the
// harness dumps when a test fails.
func Merge(snapshots ...[]Event) []Event {
	var out []Event
	for _, s := range snapshots {
		out = append(out, s...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Seq < b.Seq
	})
	return out
}

// FormatJSONL renders events as JSON lines (one event object per line) —
// the machine-readable dump shape ParseEvents reads back.
func FormatJSONL(events []Event) ([]byte, error) {
	var b strings.Builder
	enc := json.NewEncoder(&b)
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			return nil, err
		}
	}
	return []byte(b.String()), nil
}

// ParseEvents decodes a dumped trace in any of the shapes the tooling
// produces: JSON lines (the harness .jsonl artifact), a JSON array, or a
// {"events": [...]} object (the /debug/hraft/trace?format=json response).
func ParseEvents(data []byte) ([]Event, error) {
	trimmed := strings.TrimSpace(string(data))
	if trimmed == "" {
		return nil, nil
	}
	switch trimmed[0] {
	case '[':
		var out []Event
		if err := json.Unmarshal([]byte(trimmed), &out); err != nil {
			return nil, err
		}
		return out, nil
	case '{':
		// One object per line (JSONL), or a single wrapper object.
		if i := strings.IndexByte(trimmed, '\n'); i < 0 {
			var wrapper struct {
				Events []Event `json:"events"`
			}
			if err := json.Unmarshal([]byte(trimmed), &wrapper); err == nil && wrapper.Events != nil {
				return wrapper.Events, nil
			}
			var one Event
			if err := json.Unmarshal([]byte(trimmed), &one); err != nil {
				return nil, err
			}
			return []Event{one}, nil
		}
		var out []Event
		for ln, line := range strings.Split(trimmed, "\n") {
			line = strings.TrimSpace(line)
			if line == "" {
				continue
			}
			var e Event
			if err := json.Unmarshal([]byte(line), &e); err != nil {
				return nil, fmt.Errorf("line %d: %w", ln+1, err)
			}
			out = append(out, e)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("trace: unrecognized dump format (want JSON lines, array, or object)")
	}
}

// Format renders events one per line: timestamp, node label, description.
func Format(events []Event) string {
	var b strings.Builder
	for _, e := range events {
		fmt.Fprintf(&b, "%12s %-12s %-18s %s\n", e.At, e.Node, e.Type, e)
	}
	return b.String()
}
