package trace

import (
	"context"
	"encoding/json"
	"log/slog"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/hraft-io/hraft/internal/types"
)

func tpid(p string, s uint64) types.ProposalID {
	return types.ProposalID{Proposer: types.NodeID(p), Seq: s}
}

func TestRingWraparound(t *testing.T) {
	r := New(Config{Node: "n1", Size: 8})
	for i := 0; i < 20; i++ {
		r.ElectionStart(time.Duration(i)*time.Millisecond, types.Term(i))
	}
	if got := r.Len(); got != 20 {
		t.Fatalf("Len = %d, want 20 (total recorded, not retained)", got)
	}
	s := r.Snapshot()
	if len(s) != 8 {
		t.Fatalf("snapshot retains %d events, want ring size 8", len(s))
	}
	// The retained window is the last 8 events, in recording order with
	// contiguous sequence numbers.
	for i, e := range s {
		want := uint64(12 + i)
		if e.Seq != want {
			t.Fatalf("event %d: seq %d, want %d", i, e.Seq, want)
		}
		if e.Term != types.Term(want) {
			t.Fatalf("event %d: term %d, want %d (oldest events must be overwritten)", i, e.Term, want)
		}
		if e.Node != "n1" {
			t.Fatalf("event %d: node %q", i, e.Node)
		}
	}
	// Tail returns a suffix of the snapshot.
	tail := r.Tail(3)
	if len(tail) != 3 || tail[2].Seq != 19 {
		t.Fatalf("Tail(3) = %+v", tail)
	}
	if tail = r.Tail(100); len(tail) != 8 {
		t.Fatalf("Tail beyond retention returned %d events", len(tail))
	}
}

func TestConcurrentRecordAndSnapshot(t *testing.T) {
	// Meaningful under -race: writers on several labels sharing one ring
	// while readers snapshot, tail and merge metrics concurrently.
	base := New(Config{Node: "n1", Size: 64})
	derived := base.Derive("n1/global")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	record := func(r *Recorder, peer types.NodeID) {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			now := time.Duration(i) * time.Microsecond
			r.AppendDispatch(now, 1, peer, types.Index(i), 1, uint64(i))
			pid := tpid(string(peer), uint64(i))
			r.SpanStart(now, pid, 1, 0)
			r.SpanStage(now+1, pid, StageCommit, types.Index(i))
			r.SpanEnd(now+2, pid, types.Index(i))
		}
	}
	wg.Add(2)
	go record(base, "n2")
	go record(derived, "n3")
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			_ = base.Snapshot()
			_ = derived.Tail(5)
			m := make(map[string]uint64)
			base.MergeMetrics(m, "")
			derived.MergeMetrics(m, "global.")
			_ = base.Len()
		}
	}()
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
	s := base.Snapshot()
	if len(s) != 64 {
		t.Fatalf("ring holds %d events, want full 64", len(s))
	}
	for i := 1; i < len(s); i++ {
		if s[i].Seq != s[i-1].Seq+1 {
			t.Fatalf("snapshot seqs not contiguous at %d: %d after %d", i, s[i].Seq, s[i-1].Seq)
		}
	}
}

func TestDisabledRecorderZeroAlloc(t *testing.T) {
	// The disabled path must compile down to a nil check: no allocation,
	// no lock. BenchmarkProposal-class regressions start here.
	var r *Recorder
	pid := tpid("n1", 1)
	allocs := testing.AllocsPerRun(100, func() {
		r.RoleChange(0, 1, types.RoleLeader, "n1")
		r.ElectionStart(0, 1)
		r.ElectionWon(0, 1, "n1", 3)
		r.Vote(0, 1, "n2", true)
		r.AppendDispatch(0, 1, "n2", 1, 1, 1)
		r.AppendAck(0, 1, "n2", 1, 1)
		r.AppendReject(0, 1, "n2", 1)
		r.SnapStreamStart(0, 1, "n2", 1)
		r.SnapChunk(0, "n2", 1, 0, false)
		r.SnapChunkRecv(0, "n2", 1, 0)
		r.SnapResume(0, "n2", 1, 0)
		r.SnapInstall(0, 1, 0)
		r.ReadStamp(0, 1, 1)
		r.ReadConfirm(0, 1)
		r.ReadServe(0, 1, 1, true, 0)
		r.SessionOpen(0, 1)
		r.SessionExpire(0, 0)
		r.BatchPropose(0, pid, 1)
		r.GlobalOrder(0, 1, 1)
		r.Replay(0, 1, 1)
		r.SpanStart(0, pid, 1, 0)
		r.SpanStage(0, pid, StageCommit, 1)
		r.SpanEnd(0, pid, 1)
		r.SpanAbandon(pid)
		_ = r.Snapshot()
		_ = r.Tail(8)
		_ = r.Len()
		_ = r.Label()
		_ = r.Derive("x")
		r.MergeMetrics(nil, "")
	})
	if allocs != 0 {
		t.Fatalf("disabled recorder allocates %.1f per run, want 0", allocs)
	}
}

func TestDeriveSharesRingAndSequence(t *testing.T) {
	base := New(Config{Node: "n1", Size: 16})
	global := base.Derive("n1/global")
	base.ElectionStart(1*time.Millisecond, 1)
	global.GlobalOrder(2*time.Millisecond, 1, 1)
	base.ElectionWon(3*time.Millisecond, 1, "n1", 3)
	s := base.Snapshot()
	if len(s) != 3 {
		t.Fatalf("shared ring holds %d events, want 3", len(s))
	}
	if s[0].Node != "n1" || s[1].Node != "n1/global" || s[2].Node != "n1" {
		t.Fatalf("labels = %q %q %q", s[0].Node, s[1].Node, s[2].Node)
	}
	if s[0].Seq != 0 || s[1].Seq != 1 || s[2].Seq != 2 {
		t.Fatalf("sequence space not shared: %d %d %d", s[0].Seq, s[1].Seq, s[2].Seq)
	}
	if got := global.Snapshot(); len(got) != 3 {
		t.Fatalf("derived snapshot sees %d events, want the same ring (3)", len(got))
	}
}

func TestSpanStagesFeedHistograms(t *testing.T) {
	r := New(Config{Node: "n1"})
	pid := tpid("c", 7)
	r.SpanStart(0, pid, 2, 0)
	r.SpanStage(2*time.Millisecond, pid, StageAppend, 5)
	r.SpanStage(3*time.Millisecond, pid, StageReplicate, 5)
	r.SpanStage(9*time.Millisecond, pid, StageQuorum, 5)
	r.SpanStage(10*time.Millisecond, pid, StageCommit, 5)
	r.SpanEnd(11*time.Millisecond, pid, 5)

	m := make(map[string]uint64)
	r.MergeMetrics(m, "")
	for _, k := range []string{
		"hist.stage_append.count",
		"hist.stage_replicate.count",
		"hist.stage_quorum.count",
		"hist.stage_commit.count",
		"hist.stage_apply.count",
		"hist.stage_total.count",
	} {
		if m[k] != 1 {
			t.Fatalf("%s = %d, want 1 (have %v)", k, m[k], m)
		}
	}
	// Stage gaps measure since the previous stamp: quorum took 6ms, so it
	// lands above the 5ms bucket; append (2ms) lands at or below it.
	if m["hist.stage_quorum.le.5ms"] != 0 {
		t.Fatalf("quorum 6ms gap counted in le.5ms bucket")
	}
	if m["hist.stage_append.le.5ms"] != 1 {
		t.Fatalf("append 2ms gap missing from le.5ms bucket")
	}
	if m["hist.stage_total.sum_us"] != 11000 {
		t.Fatalf("total sum_us = %d, want 11000", m["hist.stage_total.sum_us"])
	}
	// The ring carries the stage stamps as events too.
	var stages []string
	for _, e := range r.Snapshot() {
		if e.Type == EvStage {
			stages = append(stages, Stage(e.Arg).String())
		}
	}
	want := "propose append replicate quorum commit apply"
	if got := strings.Join(stages, " "); got != want {
		t.Fatalf("stage events = %q, want %q", got, want)
	}
}

func TestAbandonedSpanNotObserved(t *testing.T) {
	r := New(Config{Node: "n1"})
	pid := tpid("c", 1)
	r.SpanStart(0, pid, 1, 0)
	r.SpanStage(time.Millisecond, pid, StageAppend, 3)
	r.SpanAbandon(pid)
	r.SpanEnd(2*time.Millisecond, pid, 3) // too late: span is gone
	m := make(map[string]uint64)
	r.MergeMetrics(m, "")
	if got := m["hist.stage_total.count"]; got != 0 {
		t.Fatalf("abandoned span observed %d times", got)
	}
}

// slowHandler captures slog records for assertion.
type slowHandler struct {
	mu      sync.Mutex
	records []map[string]string
}

func (h *slowHandler) Enabled(context.Context, slog.Level) bool { return true }
func (h *slowHandler) Handle(_ context.Context, rec slog.Record) error {
	attrs := map[string]string{"msg": rec.Message}
	rec.Attrs(func(a slog.Attr) bool {
		attrs[a.Key] = a.Value.String()
		return true
	})
	h.mu.Lock()
	h.records = append(h.records, attrs)
	h.mu.Unlock()
	return nil
}
func (h *slowHandler) WithAttrs([]slog.Attr) slog.Handler { return h }
func (h *slowHandler) WithGroup(string) slog.Handler      { return h }

func TestSlowOpThresholdLogs(t *testing.T) {
	h := &slowHandler{}
	r := New(Config{Node: "n1", SlowOp: 10 * time.Millisecond, Logger: slog.New(h)})
	r.SetPeersFunc(func() []types.NodeID { return []types.NodeID{"n2", "n3"} })

	// Under threshold: silent.
	fast := tpid("c", 1)
	r.SpanStart(0, fast, 1, 0)
	r.SpanEnd(5*time.Millisecond, fast, 1)
	if len(h.records) != 0 {
		t.Fatalf("fast proposal logged: %v", h.records)
	}

	// Over threshold: one report naming proposal, term and peers.
	slow := tpid("c", 2)
	r.SpanStart(0, slow, 3, 0)
	r.SpanStage(18*time.Millisecond, slow, StageCommit, 9)
	r.SpanEnd(20*time.Millisecond, slow, 9)
	if len(h.records) != 1 {
		t.Fatalf("slow proposal produced %d log records, want 1", len(h.records))
	}
	got := h.records[0]
	if got["proposal"] != slow.String() {
		t.Fatalf("log names proposal %q, want %q", got["proposal"], slow.String())
	}
	if got["term"] != "3" || got["index"] != "9" {
		t.Fatalf("log term/index = %q/%q", got["term"], got["index"])
	}
	if got["peers"] != "n2,n3" {
		t.Fatalf("log peers = %q", got["peers"])
	}
	// The ring carries a slow-op marker too.
	var found bool
	for _, e := range r.Snapshot() {
		if e.Type == EvSlowOp && e.PID == slow {
			found = true
		}
	}
	if !found {
		t.Fatal("no EvSlowOp event in the ring")
	}
}

func TestMergeOrdersAcrossNodes(t *testing.T) {
	a := New(Config{Node: "a", Size: 8})
	b := New(Config{Node: "b", Size: 8})
	a.ElectionStart(3*time.Millisecond, 1)
	b.ElectionStart(1*time.Millisecond, 1)
	a.ElectionWon(5*time.Millisecond, 1, "a", 2)
	b.RoleChange(3*time.Millisecond, 1, types.RoleFollower, "a")
	merged := Merge(a.Snapshot(), b.Snapshot())
	if len(merged) != 4 {
		t.Fatalf("merged %d events, want 4", len(merged))
	}
	wantOrder := []string{"b", "a", "b", "a"} // 1ms, 3ms (a<b tie on node), 3ms, 5ms
	for i, e := range merged {
		if e.Node != wantOrder[i] {
			t.Fatalf("merged[%d] from %q, want %q (full: %s)", i, e.Node, wantOrder[i], Format(merged))
		}
	}
	text := Format(merged)
	if !strings.Contains(text, "election.start") || !strings.Contains(text, "election.won") {
		t.Fatalf("Format output missing event names:\n%s", text)
	}
}

// TestMergeDeterministicTieBreak pins the merge ordering contract the
// offline auditor depends on: same-timestamp ties break by node label,
// then sequence number, so merging the same snapshots in any argument
// order yields an identical stream.
func TestMergeDeterministicTieBreak(t *testing.T) {
	a := New(Config{Node: "a", Size: 8})
	b := New(Config{Node: "b", Size: 8})
	at := 2 * time.Millisecond
	a.ElectionStart(at, 1)
	a.ElectionWon(at, 1, "a", 2) // same node, same instant: seq breaks the tie
	b.ElectionStart(at, 1)
	b.RoleChange(at, 1, types.RoleFollower, "a")
	want := Merge(a.Snapshot(), b.Snapshot())
	if len(want) != 4 {
		t.Fatalf("merged %d events, want 4", len(want))
	}
	for i, e := range want {
		wantNode := "a"
		if i >= 2 {
			wantNode = "b"
		}
		if e.Node != wantNode || e.Seq != uint64(i%2) {
			t.Fatalf("merged[%d] = node %q seq %d, want node %q seq %d (label then seq breaks ties)",
				i, e.Node, e.Seq, wantNode, i%2)
		}
	}
	for _, got := range [][]Event{
		Merge(b.Snapshot(), a.Snapshot()),
		Merge(nil, b.Snapshot(), nil, a.Snapshot()),
	} {
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("merge order depends on argument order:\ngot  %v\nwant %v", got, want)
		}
	}
}

// TestRingSizeFromEnv pins the HRAFT_TRACE_RING contract: a positive
// value becomes the default ring capacity for recorders built without an
// explicit Size, an explicit Size always wins, and unset or garbage
// values fall back silently.
func TestRingSizeFromEnv(t *testing.T) {
	t.Setenv("HRAFT_TRACE_RING", "32")
	if got := RingSizeFromEnv(); got != 32 {
		t.Fatalf("RingSizeFromEnv = %d, want 32", got)
	}
	r := New(Config{Node: "n1"}) // Size 0: the env supplies the default
	for i := 0; i < 100; i++ {
		r.ElectionStart(time.Duration(i), types.Term(i))
	}
	if s := r.Snapshot(); len(s) != 32 {
		t.Fatalf("env-sized ring retains %d events, want 32", len(s))
	}
	explicit := New(Config{Node: "n1", Size: 8})
	for i := 0; i < 100; i++ {
		explicit.ElectionStart(time.Duration(i), types.Term(i))
	}
	if s := explicit.Snapshot(); len(s) != 8 {
		t.Fatalf("explicit Size overridden by env: ring retains %d, want 8", len(s))
	}
	for _, bad := range []string{"", "bogus", "-3", "0"} {
		t.Setenv("HRAFT_TRACE_RING", bad)
		if got := RingSizeFromEnv(); got != 0 {
			t.Fatalf("RingSizeFromEnv(%q) = %d, want 0", bad, got)
		}
	}
}

// TestParseEventsFormats pins that every dump shape the tooling produces
// round-trips through ParseEvents: the harness JSONL artifact, a plain
// JSON array, and the {"node":..., "events":[...]} object the debug
// endpoint serves.
func TestParseEventsFormats(t *testing.T) {
	r := New(Config{Node: "n1", Size: 8, Group: "local/cA"})
	r.ElectionStart(1*time.Millisecond, 1)
	r.ElectionWon(2*time.Millisecond, 1, "n1", 2)
	r.CommitEntry(3*time.Millisecond, 1, types.Entry{Index: 1, Data: []byte("x")})
	want := r.Snapshot()

	jsonl, err := FormatJSONL(want)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	wrapper, err := json.Marshal(struct {
		Node   string  `json:"node"`
		Events []Event `json:"events"`
	}{"n1", want})
	if err != nil {
		t.Fatal(err)
	}
	for name, data := range map[string][]byte{
		"jsonl": jsonl, "array": arr, "wrapper": wrapper,
	} {
		got, err := ParseEvents(data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s round-trip mismatch:\ngot  %+v\nwant %+v", name, got, want)
		}
	}
	if got, err := ParseEvents(nil); err != nil || got != nil {
		t.Fatalf("empty input = (%v, %v), want (nil, nil)", got, err)
	}
	if _, err := ParseEvents([]byte("not json")); err == nil {
		t.Fatal("garbage input parsed without error")
	}
}

// TestAttachSinkSeesSharedRing pins the auditor subscription point: an
// attached sink observes every event recorded through the base recorder
// and every recorder Derive'd from it, in recording order, with group
// stamps intact.
func TestAttachSinkSeesSharedRing(t *testing.T) {
	base := New(Config{Node: "n1", Size: 8})
	base.SetGroup("local/cA")
	global := base.Derive("n1/global")
	global.SetGroup("global")

	var seen []Event
	base.Attach(func(e Event) { seen = append(seen, e) })

	base.ElectionStart(1*time.Millisecond, 1)
	global.ElectionStart(2*time.Millisecond, 1)
	base.ElectionWon(3*time.Millisecond, 1, "n1", 2)

	if len(seen) != 3 {
		t.Fatalf("sink saw %d events, want 3", len(seen))
	}
	wantNodes := []string{"n1", "n1/global", "n1"}
	wantGroups := []string{"local/cA", "global", "local/cA"}
	for i, e := range seen {
		if e.Node != wantNodes[i] || e.Group != wantGroups[i] {
			t.Fatalf("seen[%d] = node %q group %q, want node %q group %q",
				i, e.Node, e.Group, wantNodes[i], wantGroups[i])
		}
		if e.Seq != uint64(i) {
			t.Fatalf("seen[%d] seq = %d, want %d (recording order)", i, e.Seq, i)
		}
	}
	// Attaching to the disabled recorder is a no-op, not a panic.
	var nilRec *Recorder
	nilRec.Attach(func(Event) { t.Fatal("sink on disabled recorder fired") })
	nilRec.ElectionStart(0, 1)
}

// TestEntryDigestIdentity pins the digest's identity notion: it covers
// what the proposal is (kind, proposer, session, payload) and ignores
// leader-stamped bookkeeping (term, approval), matching the harness
// SafetyChecker's equality.
func TestEntryDigestIdentity(t *testing.T) {
	base := types.Entry{
		Kind: types.KindNormal, Index: 5, Term: 2,
		PID: tpid("c", 9), Data: []byte("payload"),
	}
	same := base.Clone()
	same.Term = 7 // a later leader re-stamps the term; identity unchanged
	if EntryDigest(base) != EntryDigest(same) {
		t.Fatal("digest depends on term")
	}
	for name, mutate := range map[string]func(*types.Entry){
		"data":        func(e *types.Entry) { e.Data = []byte("other") },
		"pid":         func(e *types.Entry) { e.PID = tpid("c", 10) },
		"kind":        func(e *types.Entry) { e.Kind = types.KindNoop },
		"session":     func(e *types.Entry) { e.Session = 3 },
		"session_seq": func(e *types.Entry) { e.SessionSeq = 4 },
	} {
		diff := base.Clone()
		mutate(&diff)
		if EntryDigest(base) == EntryDigest(diff) {
			t.Fatalf("digest ignores %s", name)
		}
	}
}

func TestEventJSONSelfDescribing(t *testing.T) {
	e := Event{Seq: 4, At: time.Millisecond, Node: "n1", Type: EvAppendAck, Peer: "n2"}
	b, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	if !strings.Contains(s, `"type":"append.ack"`) {
		t.Fatalf("type not rendered by name: %s", s)
	}
	if strings.Contains(s, `"pid"`) {
		t.Fatalf("zero PID not omitted: %s", s)
	}
	withPID := Event{Type: EvStage, PID: tpid("c", 9)}
	if b, err = json.Marshal(withPID); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"pid"`) {
		t.Fatalf("non-zero PID dropped: %s", b)
	}
}
