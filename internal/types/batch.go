package types

import "fmt"

// BatchItem is one locally committed application entry carried inside a
// C-Raft global-log batch.
type BatchItem struct {
	// PID is the original proposal's ID.
	PID ProposalID
	// Data is the application payload.
	Data []byte
	// Trace is the item's sampled trace context (0 = unsampled), carried
	// from the local entry so replay on every site can record the
	// batch→global-order→replay hops against the origin's trace.
	Trace uint64
}

// Batch is the payload of a KindBatch global-log entry: a run of locally
// committed entries from one cluster, in local-log order.
type Batch struct {
	// Cluster is the originating cluster.
	Cluster NodeID
	// Seq numbers the batch within its cluster (1-based, contiguous).
	Seq uint64
	// Items are the batched application entries.
	Items []BatchItem
}

// Len returns the number of application entries in the batch.
func (b Batch) Len() int { return len(b.Items) }

// String summarizes the batch.
func (b Batch) String() string {
	return fmt.Sprintf("batch{%s #%d n=%d}", b.Cluster, b.Seq, len(b.Items))
}

// EncodeBatch serializes a batch for embedding in an Entry's Data. Trace
// contexts of sampled items ride in a trailing (item index, trace ID)
// section, present only when at least one item is sampled: unsampled
// batches encode byte-identically to the pre-trace layout, and decoders
// of old payloads (global logs persisted before the section existed) see
// an empty tail.
func EncodeBatch(b Batch) []byte {
	var w writer
	w.str(string(b.Cluster))
	w.u64(b.Seq)
	w.u64(uint64(len(b.Items)))
	for _, it := range b.Items {
		w.str(string(it.PID.Proposer))
		w.u64(it.PID.Seq)
		w.bytes(it.Data)
	}
	for i, it := range b.Items {
		if it.Trace != 0 {
			w.u64(uint64(i))
			w.u64(it.Trace)
		}
	}
	return w.buf
}

// DecodeBatch parses a batch previously produced by EncodeBatch.
func DecodeBatch(data []byte) (Batch, error) {
	r := reader{buf: data}
	var b Batch
	b.Cluster = NodeID(r.str())
	b.Seq = r.u64()
	n := r.u64()
	if r.err == nil && n > uint64(len(data)) {
		return Batch{}, fmt.Errorf("types: batch item count %d exceeds payload", n)
	}
	for i := uint64(0); i < n && r.err == nil; i++ {
		var it BatchItem
		it.PID.Proposer = NodeID(r.str())
		it.PID.Seq = r.u64()
		it.Data = r.bytes()
		b.Items = append(b.Items, it)
	}
	// Trailing trace section (absent in pre-trace payloads).
	for r.err == nil && r.off < len(data) {
		i := r.u64()
		tid := r.u64()
		if r.err == nil {
			if i >= uint64(len(b.Items)) {
				return Batch{}, fmt.Errorf("types: batch trace index %d out of range", i)
			}
			b.Items[i].Trace = tid
		}
	}
	if r.err != nil {
		return Batch{}, fmt.Errorf("types: decode batch: %w", r.err)
	}
	return b, nil
}

// GlobalStateDelta is the payload of a KindGlobalState local-log entry. It
// replicates, through intra-cluster consensus, every externally visible
// change a cluster leader made to its inter-cluster (global) Fast Raft
// state, so a successor local leader can resume the cluster's role.
type GlobalStateDelta struct {
	// Era identifies the local leadership under which the delta was
	// produced (the proposing local leader's local term). Deltas from an
	// era older than the latest applied era are ignored during replay:
	// their changes were never externalized, because a demoted or dead
	// local leader never releases messages.
	Era uint64
	// Seq orders deltas within an era (1-based, contiguous). Local
	// consensus may commit deltas out of proposal order when proposal
	// slots are contended; replay buffers and applies them in Seq order.
	Seq uint64
	// Term is the global instance's current term after the step.
	Term Term
	// VotedFor is the global instance's votedFor after the step.
	VotedFor NodeID
	// CommitIndex is the global instance's commit index after the step.
	CommitIndex Index
	// Entries are global-log entries inserted or overwritten by the step,
	// with their indices and approval markers.
	Entries []Entry
}

// EncodeGlobalStateDelta serializes a delta for embedding in an Entry.
func EncodeGlobalStateDelta(d GlobalStateDelta) []byte {
	var w writer
	w.u64(d.Era)
	w.u64(d.Seq)
	w.u64(uint64(d.Term))
	w.str(string(d.VotedFor))
	w.u64(uint64(d.CommitIndex))
	w.u64(uint64(len(d.Entries)))
	for i := range d.Entries {
		w.entry(d.Entries[i])
	}
	return w.buf
}

// DecodeGlobalStateDelta parses a delta produced by EncodeGlobalStateDelta.
func DecodeGlobalStateDelta(data []byte) (GlobalStateDelta, error) {
	r := reader{buf: data}
	var d GlobalStateDelta
	d.Era = r.u64()
	d.Seq = r.u64()
	d.Term = Term(r.u64())
	d.VotedFor = NodeID(r.str())
	d.CommitIndex = Index(r.u64())
	n := r.u64()
	if r.err == nil && n > uint64(len(data)) {
		return GlobalStateDelta{}, fmt.Errorf("types: delta entry count %d exceeds payload", n)
	}
	for i := uint64(0); i < n && r.err == nil; i++ {
		d.Entries = append(d.Entries, r.entry())
	}
	if r.err != nil {
		return GlobalStateDelta{}, fmt.Errorf("types: decode global state delta: %w", r.err)
	}
	return d, nil
}
