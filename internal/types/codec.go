package types

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Wire codec.
//
// Messages cross the UDP transport as a single datagram:
//
//	magic(2) version(1) msgType(1) | from | to | layer(1) | body
//
// All integers are unsigned varints; strings and byte slices are
// length-prefixed. The codec is hand-rolled (stdlib-only constraint) and
// fully round-trip tested, including fuzz-style corpus checks.

const (
	wireMagic = 0xC4AF
	// wireVersion 2 added the session fields to the entry encoding and the
	// session-state section to the snapshot encoding. Version 3 added the
	// chunked-snapshot fields (Boundary/Offset/Data/Done) to
	// InstallSnapshot and the ack fields (Boundary/Offset) to
	// InstallSnapshotReply. Version 4 added the SessionAck field to the
	// entry encoding, the pending-stream fields
	// (PendingBoundary/PendingOffset) to AppendEntriesResp and the stream
	// checksum (Check) to InstallSnapshot. Version 5 added the read-batch
	// ID (ReadCtx) to AppendEntries and AppendEntriesResp plus the
	// ReadRequest/ReadReply message pair (linearizable read subsystem).
	// Version 6 made ReadRequest/ReadReply vector messages: a forwarding
	// follower coalesces every queued read into one ReadRequest per leader
	// round-trip, and the leader batches the resolutions it releases
	// together into one ReadReply. Version 7 added the group tag to the
	// envelope header (multi-group sharding: v6 frames decode with Group
	// empty), the ShardBatch cross-group coalescing message, the TimeoutNow
	// leadership-transfer order and the Transfer flag on RequestVote.
	// Version 8 added optional trace-context propagation: a sampled
	// TraceID rides entries, read specs/results and snapshot chunks behind
	// a presence bit (wireTraceFlag) stolen from an existing small-valued
	// byte, so unsampled v8 bodies are byte-identical to v7 bodies — zero
	// trace-context bytes and zero extra allocations on the unsampled
	// path. v6/v7 frames decode with TraceID zero.
	wireVersion = 8
	// wireVersionMin is the oldest frame version this decoder accepts: v2
	// frames (no chunk fields) decode as whole-image transfers, v3 frames
	// (no ack/continuation fields) and v4 frames (no read-batch fields)
	// decode with those features zero, and v5 singleton ReadRequest/
	// ReadReply frames decode as one-element batches, so a v6 node
	// understands everything older senders emit — a v4 responder simply
	// never confirms read batches. Note the compatibility is
	// one-directional — this encoder always writes v6, which older
	// decoders reject as a bad frame — so mixed clusters need the upgraded
	// side rolled out last on the decode path. Unknown versions are
	// rejected loudly as ErrBadFrame rather than misdecoded.
	wireVersionMin = 2
)

// wireTraceFlag marks a trace-context varint following the byte it is set
// on: the entry Kind byte, a ReadSpec's Consistency byte, a ReadResult's
// OK byte, or an InstallSnapshot's Done byte. All four fields use fewer
// than 7 bits of their byte, so stealing the top bit keeps unsampled
// encodes byte-identical to the v7 layout. Encoders set it only when the
// TraceID is nonzero; decoders reject it on pre-v8 frames (legitimate old
// senders never set it).
const wireTraceFlag = 0x80

// Message type tags. The values are part of the wire format; never reorder.
const (
	tagProposeEntry uint8 = iota + 1
	tagVoteEntry
	tagClientPropose
	tagAppendEntries
	tagAppendEntriesResp
	tagRequestVote
	tagRequestVoteResp
	tagCommitNotify
	tagJoinRequest
	tagJoinRedirect
	tagJoinAccepted
	tagLeaveRequest
	tagInstallSnapshot
	tagInstallSnapshotReply
	tagReadRequest
	tagReadReply
	tagTimeoutNow
	tagShardBatch
)

// ErrBadFrame reports a datagram that is not a valid hraft frame.
var ErrBadFrame = errors.New("types: bad frame")

// EncodeEnvelope serializes an envelope into a fresh buffer.
func EncodeEnvelope(env Envelope) ([]byte, error) {
	return AppendEnvelope(nil, env)
}

// AppendEnvelope serializes an envelope onto buf (which may be nil or a
// recycled buffer) and returns the extended slice. With a reused buffer of
// sufficient capacity the encode performs zero heap allocations; transports
// on the send hot path keep one scratch buffer per sender goroutine and
// re-encode into it.
func AppendEnvelope(buf []byte, env Envelope) ([]byte, error) {
	tag, err := msgTag(env.Msg)
	if err != nil {
		return nil, err
	}
	w := writer{buf: buf}
	var hdr [3]byte
	binary.BigEndian.PutUint16(hdr[:2], wireMagic)
	hdr[2] = wireVersion
	w.buf = append(w.buf, hdr[:]...)
	w.buf = append(w.buf, tag)
	w.str(string(env.From))
	w.str(string(env.To))
	w.buf = append(w.buf, byte(env.Layer))
	w.str(string(env.Group))
	encodeBody(&w, env.Msg)
	if w.err != nil {
		return nil, w.err
	}
	return w.buf, nil
}

// DecodeEnvelope parses a datagram produced by EncodeEnvelope.
func DecodeEnvelope(data []byte) (Envelope, error) {
	if len(data) < 4 {
		return Envelope{}, ErrBadFrame
	}
	ver := data[2]
	if binary.BigEndian.Uint16(data[:2]) != wireMagic ||
		ver < wireVersionMin || ver > wireVersion {
		return Envelope{}, ErrBadFrame
	}
	tag := data[3]
	r := reader{buf: data[4:], ver: ver}
	var env Envelope
	env.From = NodeID(r.str())
	env.To = NodeID(r.str())
	if r.err == nil {
		if len(r.buf) <= r.off {
			r.err = ErrBadFrame
		} else {
			env.Layer = Layer(r.buf[r.off])
			r.off++
		}
	}
	if ver >= 7 {
		env.Group = GroupID(r.str())
	}
	msg, err := decodeBody(&r, tag)
	if err != nil {
		return Envelope{}, err
	}
	if r.err != nil {
		return Envelope{}, fmt.Errorf("types: decode envelope: %w", r.err)
	}
	env.Msg = msg
	return env, nil
}

func msgTag(m Message) (uint8, error) {
	switch m.(type) {
	case ProposeEntry:
		return tagProposeEntry, nil
	case VoteEntry:
		return tagVoteEntry, nil
	case ClientPropose:
		return tagClientPropose, nil
	case AppendEntries:
		return tagAppendEntries, nil
	case AppendEntriesResp:
		return tagAppendEntriesResp, nil
	case RequestVote:
		return tagRequestVote, nil
	case RequestVoteResp:
		return tagRequestVoteResp, nil
	case CommitNotify:
		return tagCommitNotify, nil
	case JoinRequest:
		return tagJoinRequest, nil
	case JoinRedirect:
		return tagJoinRedirect, nil
	case JoinAccepted:
		return tagJoinAccepted, nil
	case LeaveRequest:
		return tagLeaveRequest, nil
	case InstallSnapshot:
		return tagInstallSnapshot, nil
	case InstallSnapshotReply:
		return tagInstallSnapshotReply, nil
	case ReadRequest:
		return tagReadRequest, nil
	case ReadReply:
		return tagReadReply, nil
	case TimeoutNow:
		return tagTimeoutNow, nil
	case ShardBatch:
		return tagShardBatch, nil
	default:
		return 0, fmt.Errorf("types: unknown message type %T", m)
	}
}

func encodeBody(w *writer, m Message) {
	switch v := m.(type) {
	case ProposeEntry:
		w.u64(uint64(v.Index))
		w.entry(v.Entry)
	case VoteEntry:
		w.u64(uint64(v.Term))
		w.u64(uint64(v.Index))
		w.entry(v.Entry)
		w.u64(uint64(v.CommitIndex))
	case ClientPropose:
		w.entry(v.Entry)
	case AppendEntries:
		w.u64(uint64(v.Term))
		w.str(string(v.LeaderID))
		w.u64(uint64(v.PrevLogIndex))
		w.u64(uint64(v.PrevLogTerm))
		w.u64(uint64(len(v.Entries)))
		for i := range v.Entries {
			w.entry(v.Entries[i])
		}
		w.u64(uint64(v.LeaderCommit))
		w.u64(v.Round)
		w.u64(v.ReadCtx)
	case AppendEntriesResp:
		w.u64(uint64(v.Term))
		w.bool(v.Success)
		w.u64(uint64(v.MatchIndex))
		w.u64(uint64(v.LastLogIndex))
		w.u64(uint64(v.PendingBoundary))
		w.u64(v.PendingOffset)
		w.u64(v.Round)
		w.u64(v.ReadCtx)
	case RequestVote:
		w.u64(uint64(v.Term))
		w.str(string(v.CandidateID))
		w.u64(uint64(v.LastLogIndex))
		w.u64(uint64(v.LastLogTerm))
		w.bool(v.Transfer)
	case RequestVoteResp:
		w.u64(uint64(v.Term))
		w.bool(v.Granted)
		w.u64(uint64(len(v.SelfApproved)))
		for i := range v.SelfApproved {
			w.entry(v.SelfApproved[i])
		}
	case CommitNotify:
		w.str(string(v.PID.Proposer))
		w.u64(v.PID.Seq)
		w.u64(uint64(v.Index))
	case JoinRequest:
		w.str(string(v.Site))
	case JoinRedirect:
		w.str(string(v.Leader))
	case JoinAccepted:
		w.u64(uint64(v.ConfigIndex))
	case LeaveRequest:
		w.str(string(v.Site))
	case InstallSnapshot:
		w.u64(uint64(v.Term))
		w.str(string(v.LeaderID))
		w.snapshot(v.Snapshot)
		w.u64(uint64(v.Boundary))
		w.u64(v.Offset)
		w.bytes(v.Data)
		w.u64(uint64(v.Check))
		var done byte
		if v.Done {
			done = 1
		}
		if v.Trace != 0 {
			done |= wireTraceFlag
		}
		w.buf = append(w.buf, done)
		if v.Trace != 0 {
			w.u64(v.Trace)
		}
		w.u64(v.Round)
	case InstallSnapshotReply:
		w.u64(uint64(v.Term))
		w.u64(uint64(v.LastIndex))
		w.u64(uint64(v.Boundary))
		w.u64(v.Offset)
		w.u64(v.Round)
	case ReadRequest:
		w.u64(uint64(len(v.Reads)))
		for _, s := range v.Reads {
			w.u64(s.ID)
			c := byte(s.Consistency)
			if s.Trace != 0 {
				c |= wireTraceFlag
			}
			w.buf = append(w.buf, c)
			if s.Trace != 0 {
				w.u64(s.Trace)
			}
		}
	case ReadReply:
		w.u64(uint64(len(v.Results)))
		for _, res := range v.Results {
			w.u64(res.ID)
			w.u64(uint64(res.Index))
			var ok byte
			if res.OK {
				ok = 1
			}
			if res.Trace != 0 {
				ok |= wireTraceFlag
			}
			w.buf = append(w.buf, ok)
			if res.Trace != 0 {
				w.u64(res.Trace)
			}
		}
	case TimeoutNow:
		w.u64(uint64(v.Term))
	case ShardBatch:
		w.u64(uint64(len(v.Frames)))
		for _, f := range v.Frames {
			if _, nested := f.Msg.(ShardBatch); nested {
				w.err = fmt.Errorf("types: nested ShardBatch: %w", ErrBadFrame)
				return
			}
			tag, err := msgTag(f.Msg)
			if err != nil {
				w.err = err
				return
			}
			w.str(string(f.Group))
			w.buf = append(w.buf, byte(f.Layer), tag)
			encodeBody(w, f.Msg)
		}
	}
}

func decodeBody(r *reader, tag uint8) (Message, error) {
	switch tag {
	case tagProposeEntry:
		var v ProposeEntry
		v.Index = Index(r.u64())
		v.Entry = r.entry()
		return v, r.err
	case tagVoteEntry:
		var v VoteEntry
		v.Term = Term(r.u64())
		v.Index = Index(r.u64())
		v.Entry = r.entry()
		v.CommitIndex = Index(r.u64())
		return v, r.err
	case tagClientPropose:
		var v ClientPropose
		v.Entry = r.entry()
		return v, r.err
	case tagAppendEntries:
		var v AppendEntries
		v.Term = Term(r.u64())
		v.LeaderID = NodeID(r.str())
		v.PrevLogIndex = Index(r.u64())
		v.PrevLogTerm = Term(r.u64())
		n := r.u64()
		if r.err == nil && n > uint64(len(r.buf)) {
			return nil, ErrBadFrame
		}
		if n > 0 && r.err == nil {
			v.Entries = GetEntries(int(n))
		}
		for i := uint64(0); i < n && r.err == nil; i++ {
			v.Entries = append(v.Entries, r.entry())
		}
		v.LeaderCommit = Index(r.u64())
		v.Round = r.u64()
		if r.ver >= 5 {
			v.ReadCtx = r.u64()
		}
		return v, r.err
	case tagAppendEntriesResp:
		var v AppendEntriesResp
		v.Term = Term(r.u64())
		v.Success = r.bool()
		v.MatchIndex = Index(r.u64())
		v.LastLogIndex = Index(r.u64())
		if r.ver >= 4 {
			v.PendingBoundary = Index(r.u64())
			v.PendingOffset = r.u64()
		}
		v.Round = r.u64()
		if r.ver >= 5 {
			v.ReadCtx = r.u64()
		}
		return v, r.err
	case tagRequestVote:
		var v RequestVote
		v.Term = Term(r.u64())
		v.CandidateID = NodeID(r.str())
		v.LastLogIndex = Index(r.u64())
		v.LastLogTerm = Term(r.u64())
		if r.ver >= 7 {
			v.Transfer = r.bool()
		}
		return v, r.err
	case tagRequestVoteResp:
		var v RequestVoteResp
		v.Term = Term(r.u64())
		v.Granted = r.bool()
		n := r.u64()
		if r.err == nil && n > uint64(len(r.buf)) {
			return nil, ErrBadFrame
		}
		for i := uint64(0); i < n && r.err == nil; i++ {
			v.SelfApproved = append(v.SelfApproved, r.entry())
		}
		return v, r.err
	case tagCommitNotify:
		var v CommitNotify
		v.PID.Proposer = NodeID(r.str())
		v.PID.Seq = r.u64()
		v.Index = Index(r.u64())
		return v, r.err
	case tagJoinRequest:
		var v JoinRequest
		v.Site = NodeID(r.str())
		return v, r.err
	case tagJoinRedirect:
		var v JoinRedirect
		v.Leader = NodeID(r.str())
		return v, r.err
	case tagJoinAccepted:
		var v JoinAccepted
		v.ConfigIndex = Index(r.u64())
		return v, r.err
	case tagLeaveRequest:
		var v LeaveRequest
		v.Site = NodeID(r.str())
		return v, r.err
	case tagInstallSnapshot:
		var v InstallSnapshot
		v.Term = Term(r.u64())
		v.LeaderID = NodeID(r.str())
		v.Snapshot = r.snapshot()
		if r.ver >= 3 {
			v.Boundary = Index(r.u64())
			v.Offset = r.u64()
			v.Data = r.bytes()
			if r.ver >= 4 {
				v.Check = uint32(r.u64())
			}
			done, trace := r.flaggedByte()
			v.Done = done != 0
			v.Trace = trace
		} else {
			// v2 sender: always a whole-image transfer.
			v.Boundary = v.Snapshot.Meta.LastIndex
			v.Done = true
		}
		v.Round = r.u64()
		return v, r.err
	case tagInstallSnapshotReply:
		var v InstallSnapshotReply
		v.Term = Term(r.u64())
		v.LastIndex = Index(r.u64())
		if r.ver >= 3 {
			v.Boundary = Index(r.u64())
			v.Offset = r.u64()
		}
		v.Round = r.u64()
		return v, r.err
	case tagReadRequest:
		var v ReadRequest
		n := uint64(1)
		if r.ver >= 6 {
			n = r.u64()
			if r.err == nil && n > uint64(len(r.buf)) {
				return nil, ErrBadFrame
			}
		}
		for i := uint64(0); i < n && r.err == nil; i++ {
			// v5 senders carry exactly one (ID, Consistency) pair; the
			// vector layout repeats it.
			var s ReadSpec
			s.ID = r.u64()
			c, trace := r.flaggedByte()
			s.Consistency = ReadConsistency(c)
			s.Trace = trace
			if r.err == nil {
				v.Reads = append(v.Reads, s)
			}
		}
		return v, r.err
	case tagReadReply:
		var v ReadReply
		n := uint64(1)
		if r.ver >= 6 {
			n = r.u64()
			if r.err == nil && n > uint64(len(r.buf)) {
				return nil, ErrBadFrame
			}
		}
		for i := uint64(0); i < n && r.err == nil; i++ {
			var res ReadResult
			res.ID = r.u64()
			res.Index = Index(r.u64())
			ok, trace := r.flaggedByte()
			res.OK = ok != 0
			res.Trace = trace
			if r.err == nil {
				v.Results = append(v.Results, res)
			}
		}
		return v, r.err
	case tagTimeoutNow:
		var v TimeoutNow
		v.Term = Term(r.u64())
		return v, r.err
	case tagShardBatch:
		var v ShardBatch
		n := r.u64()
		if r.err == nil && n > uint64(len(r.buf)) {
			return nil, ErrBadFrame
		}
		if n > 0 && r.err == nil {
			v.Frames = make([]ShardFrame, 0, n)
		}
		for i := uint64(0); i < n && r.err == nil; i++ {
			var f ShardFrame
			f.Group = GroupID(r.str())
			if r.err == nil {
				if r.off+2 > len(r.buf) {
					r.err = ErrBadFrame
					break
				}
				f.Layer = Layer(r.buf[r.off])
				inner := r.buf[r.off+1]
				r.off += 2
				if inner == tagShardBatch {
					// Batches never nest; a nested tag is a corrupt or
					// hostile frame, not a recursion invitation.
					return nil, ErrBadFrame
				}
				msg, err := decodeBody(r, inner)
				if err != nil {
					return nil, err
				}
				f.Msg = msg
			}
			if r.err == nil {
				v.Frames = append(v.Frames, f)
			}
		}
		return v, r.err
	default:
		return nil, fmt.Errorf("types: unknown message tag %d: %w", tag, ErrBadFrame)
	}
}

// writer accumulates the encoded form. The zero value is ready to use. err
// latches the first nested-encode failure (an unknown message type inside a
// ShardBatch frame); the fixed-layout primitives themselves cannot fail.
type writer struct {
	buf []byte
	err error
}

func (w *writer) u64(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

func (w *writer) bool(v bool) {
	if v {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

func (w *writer) bytes(b []byte) {
	w.u64(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

func (w *writer) str(s string) {
	w.u64(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

func (w *writer) entry(e Entry) {
	w.u64(uint64(e.Index))
	w.u64(uint64(e.Term))
	kind := byte(e.Kind)
	if e.TraceID != 0 {
		kind |= wireTraceFlag
	}
	w.buf = append(w.buf, kind, byte(e.Approval))
	if e.TraceID != 0 {
		w.u64(e.TraceID)
	}
	w.str(string(e.PID.Proposer))
	w.u64(e.PID.Seq)
	w.u64(uint64(e.Session))
	w.u64(e.SessionSeq)
	w.u64(e.SessionAck)
	w.bytes(e.Data)
	if e.Config != nil {
		w.bool(true)
		w.u64(uint64(len(e.Config.Members)))
		for _, m := range e.Config.Members {
			w.str(string(m))
		}
	} else {
		w.bool(false)
	}
}

// reader consumes an encoded buffer, latching the first error. ver is the
// frame version being decoded (0 outside envelope decoding, where layouts
// are unversioned).
type reader struct {
	buf []byte
	off int
	err error
	ver uint8
}

func (r *reader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.err = ErrBadFrame
		return 0
	}
	r.off += n
	return v
}

func (r *reader) bool() bool {
	if r.err != nil {
		return false
	}
	if r.off >= len(r.buf) {
		r.err = ErrBadFrame
		return false
	}
	b := r.buf[r.off]
	r.off++
	return b != 0
}

// flaggedByte reads one raw byte that may carry wireTraceFlag plus the
// trace-context varint behind it (frame v8+, or the unversioned layouts).
// Returns the byte with the flag cleared and the trace ID (0 when absent).
// The flag on a pre-v8 frame is a corrupt frame, not a feature.
func (r *reader) flaggedByte() (byte, uint64) {
	if r.err != nil {
		return 0, 0
	}
	if r.off >= len(r.buf) {
		r.err = ErrBadFrame
		return 0, 0
	}
	b := r.buf[r.off]
	r.off++
	if b&wireTraceFlag == 0 {
		return b, 0
	}
	if r.ver != 0 && r.ver < 8 {
		r.err = ErrBadFrame
		return 0, 0
	}
	return b &^ wireTraceFlag, r.u64()
}

func (r *reader) bytes() []byte {
	n := r.u64()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.buf)-r.off) {
		r.err = ErrBadFrame
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]byte, n)
	copy(out, r.buf[r.off:r.off+int(n)])
	r.off += int(n)
	return out
}

func (r *reader) str() string {
	return string(r.bytes())
}

func (r *reader) entry() Entry {
	var e Entry
	e.Index = Index(r.u64())
	e.Term = Term(r.u64())
	if r.err == nil {
		if r.off+2 > len(r.buf) {
			r.err = ErrBadFrame
			return e
		}
		kind := r.buf[r.off]
		e.Approval = Approval(r.buf[r.off+1])
		r.off += 2
		if kind&wireTraceFlag != 0 {
			// Trace context joined the entry layout with frame v8 (the
			// unversioned WAL layout carries it unconditionally behind the
			// same bit; pre-v8 WALs never set it).
			if r.ver != 0 && r.ver < 8 {
				r.err = ErrBadFrame
				return e
			}
			kind &^= wireTraceFlag
			e.TraceID = r.u64()
		}
		e.Kind = EntryKind(kind)
	}
	e.PID.Proposer = NodeID(r.str())
	e.PID.Seq = r.u64()
	e.Session = SessionID(r.u64())
	e.SessionSeq = r.u64()
	// SessionAck joined the entry layout with frame v4. Unversioned
	// readers (ver 0: EncodeEntry/DecodeEntry pairs, i.e. the WAL, which
	// gates compatibility through its own format record) always carry it.
	if r.ver == 0 || r.ver >= 4 {
		e.SessionAck = r.u64()
	}
	e.Data = r.bytes()
	if r.bool() {
		n := r.u64()
		if r.err == nil && n > uint64(len(r.buf)) {
			r.err = ErrBadFrame
			return e
		}
		members := make([]NodeID, 0, n)
		for i := uint64(0); i < n && r.err == nil; i++ {
			members = append(members, NodeID(r.str()))
		}
		e.Config = &Config{Members: members}
	}
	return e
}

// EncodeEntry serializes a single log entry (used by the WAL).
func EncodeEntry(e Entry) []byte {
	var w writer
	w.entry(e)
	return w.buf
}

// AppendEntryTo serializes a single log entry onto buf and returns the
// extended slice. With a reused buffer of sufficient capacity the encode is
// allocation-free; the WAL record writer encodes every record through one
// scratch buffer this way.
func AppendEntryTo(buf []byte, e Entry) []byte {
	w := writer{buf: buf}
	w.entry(e)
	return w.buf
}

// DecodeEntryAt parses an entry encoded under the given frame version: 0 is
// the current unversioned layout (EncodeEntry output), 3 is the layout
// before SessionAck was added. The WAL uses it to migrate logs recorded
// under older format versions.
func DecodeEntryAt(data []byte, ver uint8) (Entry, error) {
	r := reader{buf: data, ver: ver}
	e := r.entry()
	if r.err != nil {
		return Entry{}, fmt.Errorf("types: decode entry (layout v%d): %w", ver, r.err)
	}
	return e, nil
}

// uvarintLen returns the encoded size of v as an unsigned varint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// EntryWireSize returns len(EncodeEntry(e)) without allocating. The
// replication engine uses it to budget AppendEntries payloads in bytes;
// keep it in lockstep with writer.entry.
func EntryWireSize(e Entry) int {
	n := uvarintLen(uint64(e.Index)) + uvarintLen(uint64(e.Term)) + 2 // kind, approval
	if e.TraceID != 0 {
		n += uvarintLen(e.TraceID)
	}
	n += uvarintLen(uint64(len(e.PID.Proposer))) + len(e.PID.Proposer)
	n += uvarintLen(e.PID.Seq)
	n += uvarintLen(uint64(e.Session)) + uvarintLen(e.SessionSeq) + uvarintLen(e.SessionAck)
	n += uvarintLen(uint64(len(e.Data))) + len(e.Data)
	n++ // config flag
	if e.Config != nil {
		n += uvarintLen(uint64(len(e.Config.Members)))
		for _, m := range e.Config.Members {
			n += uvarintLen(uint64(len(m))) + len(m)
		}
	}
	return n
}

// DecodeEntry parses an entry produced by EncodeEntry.
func DecodeEntry(data []byte) (Entry, error) {
	r := reader{buf: data}
	e := r.entry()
	if r.err != nil {
		return Entry{}, fmt.Errorf("types: decode entry: %w", r.err)
	}
	return e, nil
}
