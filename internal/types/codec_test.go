package types

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// sampleEntries returns a representative entry corpus.
func sampleEntries() []Entry {
	cfg := NewConfig("a", "b", "c")
	return []Entry{
		{},
		{Index: 1, Term: 1, Kind: KindNormal, Approval: ApprovedSelf,
			PID: ProposalID{Proposer: "n1", Seq: 1}, Data: []byte("hello")},
		{Index: 42, Term: 7, Kind: KindNoop, Approval: ApprovedLeader},
		{Index: 3, Term: 2, Kind: KindConfig, Approval: ApprovedLeader, Config: &cfg},
		{Index: 9, Term: 3, Kind: KindBatch, Approval: ApprovedSelf,
			PID: ProposalID{Proposer: "cluster-1", Seq: 12}, Data: bytes.Repeat([]byte{0xAB}, 300)},
		{Index: 1 << 40, Term: 1 << 30, Kind: KindGlobalState, Approval: ApprovedLeader,
			Data: []byte{}},
		{Index: 5, Term: 2, Kind: KindNormal, Approval: ApprovedSelf,
			PID:     ProposalID{Proposer: "n2", Seq: 9},
			Session: 3, SessionSeq: 7, Data: []byte("session-tagged")},
		{Index: 8, Term: 2, Kind: KindNormal, Approval: ApprovedLeader,
			PID:     ProposalID{Proposer: "n3", Seq: 11},
			Session: 3, SessionSeq: 9, SessionAck: 6, Data: []byte("acked")},
		{Index: 6, Term: 2, Kind: KindSessionOpen, Approval: ApprovedLeader,
			PID: ProposalID{Proposer: "n2", Seq: 10}},
		{Index: 7, Term: 2, Kind: KindSessionExpire, Approval: ApprovedLeader,
			Data: []byte{0x80, 0x08, 0x10}},
		{Index: 12, Term: 4, Kind: KindNormal, Approval: ApprovedSelf,
			PID:     ProposalID{Proposer: "n1", Seq: 13},
			TraceID: 0xDEADBEEFCAFE, Data: []byte("traced")},
	}
}

func sampleMessages() []Message {
	es := sampleEntries()
	return []Message{
		ProposeEntry{Index: 5, Entry: es[1]},
		VoteEntry{Term: 3, Index: 5, Entry: es[1], CommitIndex: 4},
		ClientPropose{Entry: es[1]},
		AppendEntries{Term: 9, LeaderID: "lead", PrevLogIndex: 8, PrevLogTerm: 7,
			Entries: es[1:4], LeaderCommit: 6, Round: 11, ReadCtx: 42},
		AppendEntries{Term: 1, LeaderID: "l"},
		AppendEntriesResp{Term: 9, Success: true, MatchIndex: 12, LastLogIndex: 14,
			Round: 11, ReadCtx: 42},
		AppendEntriesResp{Term: 9, Success: false, LastLogIndex: 2,
			PendingBoundary: 40, PendingOffset: 1024, Round: 12},
		AppendEntriesResp{Term: 2},
		RequestVote{Term: 4, CandidateID: "cand", LastLogIndex: 10, LastLogTerm: 3},
		RequestVoteResp{Term: 4, Granted: true, SelfApproved: es[1:2]},
		RequestVoteResp{Term: 4},
		CommitNotify{PID: ProposalID{Proposer: "p", Seq: 77}, Index: 5},
		JoinRequest{Site: "newbie"},
		JoinRedirect{Leader: "lead"},
		JoinAccepted{ConfigIndex: 30},
		LeaveRequest{Site: "goner"},
		InstallSnapshot{Term: 12, LeaderID: "lead", Round: 4, Snapshot: Snapshot{
			Meta: SnapshotMeta{LastIndex: 100, LastTerm: 9,
				Config: NewConfig("a", "b", "c"), ConfigIndex: 37},
			Data: bytes.Repeat([]byte{0x5C}, 200),
		}},
		InstallSnapshot{Term: 1, LeaderID: "l"},
		InstallSnapshot{Term: 13, LeaderID: "lead", Round: 6,
			Boundary: 100, Offset: 4096, Data: bytes.Repeat([]byte{0x7E}, 512),
			Check: 0xDEADBEEF},
		InstallSnapshot{Term: 13, LeaderID: "lead", Round: 7,
			Boundary: 100, Offset: 8192, Data: []byte{0x01}, Done: true},
		InstallSnapshotReply{Term: 12, LastIndex: 100, Round: 4},
		InstallSnapshotReply{Term: 13, LastIndex: 3, Boundary: 100, Offset: 4608, Round: 6},
		ReadRequest{Reads: []ReadSpec{{ID: 7, Consistency: ReadLinearizable}}},
		ReadRequest{Reads: []ReadSpec{
			{ID: 8, Consistency: ReadLeaseBased},
			{ID: 9, Consistency: ReadLinearizable},
		}},
		ReadReply{Results: []ReadResult{{ID: 7, Index: 99, OK: true}}},
		ReadReply{Results: []ReadResult{
			{ID: 8},
			{ID: 9, Index: 100, OK: true},
		}},
		RequestVote{Term: 8, CandidateID: "heir", LastLogIndex: 10, LastLogTerm: 3,
			Transfer: true},
		AppendEntries{Term: 10, LeaderID: "lead", PrevLogIndex: 11, PrevLogTerm: 9,
			Entries: es[10:], LeaderCommit: 11, Round: 13},
		ReadRequest{Reads: []ReadSpec{
			{ID: 10, Consistency: ReadLinearizable, Trace: 0xAB54A98CEB1F0A},
			{ID: 11, Consistency: ReadLeaseBased},
		}},
		ReadReply{Results: []ReadResult{
			{ID: 10, Index: 101, OK: true, Trace: 0xAB54A98CEB1F0A},
			{ID: 11, Index: 102, OK: true},
		}},
		InstallSnapshot{Term: 14, LeaderID: "lead", Round: 8,
			Boundary: 120, Offset: 4096, Data: []byte{0x2A}, Done: true,
			Trace: 0xFEEDFACE},
		TimeoutNow{Term: 8},
		ShardBatch{},
		ShardBatch{Frames: []ShardFrame{
			{Group: "g-a", Layer: LayerLocal, Msg: AppendEntries{Term: 9, LeaderID: "lead",
				PrevLogIndex: 8, PrevLogTerm: 7, Entries: es[1:3], LeaderCommit: 6, Round: 2}},
			{Group: "g-b", Layer: LayerLocal, Msg: VoteEntry{Term: 3, Index: 5,
				Entry: es[1], CommitIndex: 4}},
			{Group: "", Layer: LayerGlobal, Msg: TimeoutNow{Term: 4}},
		}},
	}
}

func TestEnvelopeRoundTripAllMessages(t *testing.T) {
	for _, msg := range sampleMessages() {
		env := Envelope{From: "a", To: "b", Layer: LayerGlobal, Group: "g7", Msg: msg}
		buf, err := EncodeEnvelope(env)
		if err != nil {
			t.Fatalf("%s: encode: %v", msg.MsgName(), err)
		}
		got, err := DecodeEnvelope(buf)
		if err != nil {
			t.Fatalf("%s: decode: %v", msg.MsgName(), err)
		}
		if !reflect.DeepEqual(normalize(env), normalize(got)) {
			t.Fatalf("%s: roundtrip mismatch:\n in: %#v\nout: %#v", msg.MsgName(), env, got)
		}
	}
}

// normalize maps empty and nil slices to a canonical form for comparison.
func normalize(env Envelope) Envelope {
	env.Msg = CloneMessage(env.Msg)
	switch m := env.Msg.(type) {
	case AppendEntries:
		m.Entries = canonEntries(m.Entries)
		env.Msg = m
	case RequestVoteResp:
		m.SelfApproved = canonEntries(m.SelfApproved)
		env.Msg = m
	case ProposeEntry:
		m.Entry = canonEntry(m.Entry)
		env.Msg = m
	case VoteEntry:
		m.Entry = canonEntry(m.Entry)
		env.Msg = m
	case ClientPropose:
		m.Entry = canonEntry(m.Entry)
		env.Msg = m
	case InstallSnapshot:
		m.Snapshot = canonSnapshot(m.Snapshot)
		env.Msg = m
	case ShardBatch:
		if len(m.Frames) == 0 {
			m.Frames = nil
		}
		for i, f := range m.Frames {
			inner := normalize(Envelope{Msg: f.Msg})
			m.Frames[i].Msg = inner.Msg
		}
		env.Msg = m
	}
	return env
}

func canonSnapshot(s Snapshot) Snapshot {
	if len(s.Data) == 0 {
		s.Data = nil
	}
	if len(s.Sessions) == 0 {
		s.Sessions = nil
	}
	if len(s.Meta.Config.Members) == 0 {
		s.Meta.Config = Config{}
	}
	return s
}

func canonEntries(es []Entry) []Entry {
	if len(es) == 0 {
		return nil
	}
	out := make([]Entry, len(es))
	for i := range es {
		out[i] = canonEntry(es[i])
	}
	return out
}

func canonEntry(e Entry) Entry {
	if len(e.Data) == 0 {
		e.Data = nil
	}
	if e.Config != nil && len(e.Config.Members) == 0 {
		e.Config = &Config{}
	}
	return e
}

func TestEntryRoundTrip(t *testing.T) {
	for _, e := range sampleEntries() {
		buf := EncodeEntry(e)
		got, err := DecodeEntry(buf)
		if err != nil {
			t.Fatalf("decode %v: %v", e, err)
		}
		if !reflect.DeepEqual(canonEntry(e.Clone()), canonEntry(got)) {
			t.Fatalf("roundtrip mismatch:\n in: %#v\nout: %#v", e, got)
		}
	}
}

// TestDecodeSnapshotWithoutSessionsSection checks that snapshots written
// before the session subsystem (no trailing Sessions field) still load,
// with an empty registry.
func TestDecodeSnapshotWithoutSessionsSection(t *testing.T) {
	s := Snapshot{
		Meta: SnapshotMeta{LastIndex: 5, LastTerm: 2,
			Config: NewConfig("a", "b"), ConfigIndex: 1},
		Data: []byte("state"),
	}
	buf := EncodeSnapshot(s)
	// The empty Sessions field encodes as a single trailing zero-length
	// varint; dropping it reproduces the pre-session format.
	got, err := DecodeSnapshot(buf[:len(buf)-1])
	if err != nil {
		t.Fatalf("old-format snapshot failed to decode: %v", err)
	}
	if got.Sessions != nil {
		t.Fatalf("old-format snapshot decoded with sessions: %x", got.Sessions)
	}
	if !reflect.DeepEqual(canonSnapshot(s.Clone()), canonSnapshot(got)) {
		t.Fatalf("roundtrip mismatch:\n in: %#v\nout: %#v", s, got)
	}
}

// encodeV2Envelope reproduces the wire-version-2 frame layout (no chunk
// fields on InstallSnapshot / InstallSnapshotReply) so mixed-version
// clusters can be tested against the v3 decoder.
func encodeV2Envelope(t *testing.T, env Envelope) []byte {
	t.Helper()
	var w writer
	w.buf = append(w.buf, 0xC4, 0xAF, 2)
	tag, err := msgTag(env.Msg)
	if err != nil {
		t.Fatal(err)
	}
	w.buf = append(w.buf, tag)
	w.str(string(env.From))
	w.str(string(env.To))
	w.buf = append(w.buf, byte(env.Layer))
	switch v := env.Msg.(type) {
	case InstallSnapshot:
		w.u64(uint64(v.Term))
		w.str(string(v.LeaderID))
		w.snapshot(v.Snapshot)
		w.u64(v.Round)
	case InstallSnapshotReply:
		w.u64(uint64(v.Term))
		w.u64(uint64(v.LastIndex))
		w.u64(v.Round)
	default:
		t.Fatalf("encodeV2Envelope: unsupported %T", env.Msg)
	}
	return w.buf
}

// TestDecodeV2InstallSnapshotUnderV3 checks that a frame from a v2 sender
// (whole-image transfer, no chunk fields) decodes under the v3 codec as a
// completed legacy transfer rather than misdecoding trailing fields.
func TestDecodeV2InstallSnapshotUnderV3(t *testing.T) {
	snap := Snapshot{
		Meta: SnapshotMeta{LastIndex: 88, LastTerm: 5,
			Config: NewConfig("a", "b", "c"), ConfigIndex: 37},
		Data:     []byte("whole image"),
		Sessions: []byte{1, 2, 3},
	}
	env := Envelope{From: "lead", To: "n2", Layer: LayerLocal,
		Msg: InstallSnapshot{Term: 9, LeaderID: "lead", Snapshot: snap, Round: 3}}
	got, err := DecodeEnvelope(encodeV2Envelope(t, env))
	if err != nil {
		t.Fatalf("v2 frame rejected by v3 decoder: %v", err)
	}
	m, ok := got.Msg.(InstallSnapshot)
	if !ok {
		t.Fatalf("decoded %T", got.Msg)
	}
	if !m.Done || m.Boundary != 88 || m.Offset != 0 || m.Data != nil {
		t.Fatalf("v2 frame not normalized to a whole-image transfer: %+v", m)
	}
	if m.Round != 3 || m.Term != 9 {
		t.Fatalf("v2 trailing fields misdecoded: %+v", m)
	}
	if !reflect.DeepEqual(canonSnapshot(snap.Clone()), canonSnapshot(m.Snapshot)) {
		t.Fatalf("snapshot mismatch:\n in: %#v\nout: %#v", snap, m.Snapshot)
	}
}

// TestDecodeV2InstallSnapshotReplyUnderV3 is the reply-direction compat
// case: v2 replies carry no ack fields; they must decode with zero
// Boundary/Offset and an intact Round.
func TestDecodeV2InstallSnapshotReplyUnderV3(t *testing.T) {
	env := Envelope{From: "n2", To: "lead", Layer: LayerLocal,
		Msg: InstallSnapshotReply{Term: 9, LastIndex: 88, Round: 3}}
	got, err := DecodeEnvelope(encodeV2Envelope(t, env))
	if err != nil {
		t.Fatalf("v2 reply rejected: %v", err)
	}
	m, ok := got.Msg.(InstallSnapshotReply)
	if !ok {
		t.Fatalf("decoded %T", got.Msg)
	}
	if m.Term != 9 || m.LastIndex != 88 || m.Round != 3 || m.Boundary != 0 || m.Offset != 0 {
		t.Fatalf("v2 reply misdecoded: %+v", m)
	}
}

// encodeV3Envelope hand-encodes a frame in the v3 layout (chunk fields,
// but no session-ack, pending-stream or checksum fields) so the v4
// decoder's backward compatibility can be pinned without keeping an old
// encoder around.
func encodeV3Envelope(t *testing.T, env Envelope) []byte {
	t.Helper()
	var w writer
	w.buf = append(w.buf, 0xC4, 0xAF, 3)
	tag, err := msgTag(env.Msg)
	if err != nil {
		t.Fatal(err)
	}
	w.buf = append(w.buf, tag)
	w.str(string(env.From))
	w.str(string(env.To))
	w.buf = append(w.buf, byte(env.Layer))
	v3entry := func(e Entry) {
		w.u64(uint64(e.Index))
		w.u64(uint64(e.Term))
		w.buf = append(w.buf, byte(e.Kind), byte(e.Approval))
		w.str(string(e.PID.Proposer))
		w.u64(e.PID.Seq)
		w.u64(uint64(e.Session))
		w.u64(e.SessionSeq)
		w.bytes(e.Data)
		w.bool(false) // no config
	}
	switch v := env.Msg.(type) {
	case AppendEntries:
		w.u64(uint64(v.Term))
		w.str(string(v.LeaderID))
		w.u64(uint64(v.PrevLogIndex))
		w.u64(uint64(v.PrevLogTerm))
		w.u64(uint64(len(v.Entries)))
		for i := range v.Entries {
			v3entry(v.Entries[i])
		}
		w.u64(uint64(v.LeaderCommit))
		w.u64(v.Round)
	case AppendEntriesResp:
		w.u64(uint64(v.Term))
		w.bool(v.Success)
		w.u64(uint64(v.MatchIndex))
		w.u64(uint64(v.LastLogIndex))
		w.u64(v.Round)
	case InstallSnapshot:
		w.u64(uint64(v.Term))
		w.str(string(v.LeaderID))
		w.snapshot(v.Snapshot)
		w.u64(uint64(v.Boundary))
		w.u64(v.Offset)
		w.bytes(v.Data)
		w.bool(v.Done)
		w.u64(v.Round)
	default:
		t.Fatalf("encodeV3Envelope: unsupported %T", env.Msg)
	}
	return w.buf
}

// TestDecodeV3FramesUnderV4 pins decode compatibility with v3 senders:
// entries without the session-ack field, responses without the
// pending-stream fields and chunks without the checksum must decode with
// those features zero and every trailing field intact.
func TestDecodeV3FramesUnderV4(t *testing.T) {
	ae := AppendEntries{Term: 9, LeaderID: "lead", PrevLogIndex: 8, PrevLogTerm: 7,
		Entries: []Entry{{Index: 9, Term: 9, Kind: KindNormal, Approval: ApprovedLeader,
			PID: ProposalID{Proposer: "p", Seq: 2}, Session: 3, SessionSeq: 7,
			Data: []byte("v3")}},
		LeaderCommit: 6, Round: 11}
	got, err := DecodeEnvelope(encodeV3Envelope(t, Envelope{From: "l", To: "f", Layer: LayerLocal, Msg: ae}))
	if err != nil {
		t.Fatalf("v3 AppendEntries rejected: %v", err)
	}
	if m := got.Msg.(AppendEntries); m.Round != 11 || m.LeaderCommit != 6 ||
		len(m.Entries) != 1 || m.Entries[0].SessionAck != 0 ||
		string(m.Entries[0].Data) != "v3" {
		t.Fatalf("v3 AppendEntries misdecoded: %+v", got.Msg)
	}

	resp := AppendEntriesResp{Term: 9, Success: true, MatchIndex: 12, LastLogIndex: 14, Round: 11}
	got, err = DecodeEnvelope(encodeV3Envelope(t, Envelope{From: "f", To: "l", Layer: LayerLocal, Msg: resp}))
	if err != nil {
		t.Fatalf("v3 AppendEntriesResp rejected: %v", err)
	}
	if m := got.Msg.(AppendEntriesResp); m.Round != 11 || m.MatchIndex != 12 ||
		m.PendingBoundary != 0 || m.PendingOffset != 0 {
		t.Fatalf("v3 AppendEntriesResp misdecoded: %+v", got.Msg)
	}

	is := InstallSnapshot{Term: 13, LeaderID: "lead", Boundary: 100, Offset: 4096,
		Data: []byte{0x7E, 0x7F}, Done: true, Round: 6}
	got, err = DecodeEnvelope(encodeV3Envelope(t, Envelope{From: "l", To: "f", Layer: LayerLocal, Msg: is}))
	if err != nil {
		t.Fatalf("v3 InstallSnapshot rejected: %v", err)
	}
	if m := got.Msg.(InstallSnapshot); m.Round != 6 || m.Offset != 4096 ||
		m.Check != 0 || !m.Done || len(m.Data) != 2 {
		t.Fatalf("v3 InstallSnapshot misdecoded: %+v", got.Msg)
	}
}

// encodeV6Envelope hand-encodes a frame in the v6 layout (no group tag in
// the envelope header, no transfer flag on RequestVote) so the v7 decoder's
// backward compatibility can be pinned without keeping an old encoder
// around.
func encodeV6Envelope(t *testing.T, env Envelope) []byte {
	t.Helper()
	var w writer
	w.buf = append(w.buf, 0xC4, 0xAF, 6)
	tag, err := msgTag(env.Msg)
	if err != nil {
		t.Fatal(err)
	}
	w.buf = append(w.buf, tag)
	w.str(string(env.From))
	w.str(string(env.To))
	w.buf = append(w.buf, byte(env.Layer))
	switch v := env.Msg.(type) {
	case RequestVote:
		w.u64(uint64(v.Term))
		w.str(string(v.CandidateID))
		w.u64(uint64(v.LastLogIndex))
		w.u64(uint64(v.LastLogTerm))
	case AppendEntries:
		w.u64(uint64(v.Term))
		w.str(string(v.LeaderID))
		w.u64(uint64(v.PrevLogIndex))
		w.u64(uint64(v.PrevLogTerm))
		w.u64(uint64(len(v.Entries)))
		for i := range v.Entries {
			w.entry(v.Entries[i])
		}
		w.u64(uint64(v.LeaderCommit))
		w.u64(v.Round)
		w.u64(v.ReadCtx)
	default:
		t.Fatalf("encodeV6Envelope: unsupported %T", env.Msg)
	}
	return w.buf
}

// TestDecodeV6FramesUnderV7 pins decode compatibility with v6 senders:
// ungrouped frames decode with Group empty (the flat single-group
// namespace) and votes without the transfer flag decode as ordinary
// elections.
func TestDecodeV6FramesUnderV7(t *testing.T) {
	rv := RequestVote{Term: 4, CandidateID: "cand", LastLogIndex: 10, LastLogTerm: 3}
	got, err := DecodeEnvelope(encodeV6Envelope(t, Envelope{From: "c", To: "v", Layer: LayerLocal, Msg: rv}))
	if err != nil {
		t.Fatalf("v6 RequestVote rejected: %v", err)
	}
	if got.Group != "" {
		t.Fatalf("v6 frame decoded with group %q", got.Group)
	}
	if m := got.Msg.(RequestVote); m.Transfer || m.Term != 4 || m.CandidateID != "cand" {
		t.Fatalf("v6 RequestVote misdecoded: %+v", got.Msg)
	}

	ae := AppendEntries{Term: 9, LeaderID: "lead", PrevLogIndex: 8, PrevLogTerm: 7,
		Entries: []Entry{{Index: 9, Term: 9, Kind: KindNormal, Approval: ApprovedLeader,
			PID: ProposalID{Proposer: "p", Seq: 2}, Data: []byte("v6")}},
		LeaderCommit: 6, Round: 11, ReadCtx: 42}
	got, err = DecodeEnvelope(encodeV6Envelope(t, Envelope{From: "l", To: "f", Layer: LayerLocal, Msg: ae}))
	if err != nil {
		t.Fatalf("v6 AppendEntries rejected: %v", err)
	}
	if m := got.Msg.(AppendEntries); got.Group != "" || m.ReadCtx != 42 ||
		len(m.Entries) != 1 || string(m.Entries[0].Data) != "v6" {
		t.Fatalf("v6 AppendEntries misdecoded: %+v", got.Msg)
	}
}

// TestDecodeShardBatchRejectsNesting pins the no-recursion contract: a
// frame claiming to contain a ShardBatch inside a ShardBatch is rejected.
func TestDecodeShardBatchRejectsNesting(t *testing.T) {
	if _, err := EncodeEnvelope(Envelope{From: "a", To: "b", Layer: LayerLocal,
		Msg: ShardBatch{Frames: []ShardFrame{{Group: "g", Layer: LayerLocal,
			Msg: ShardBatch{}}}}}); err == nil {
		t.Fatal("nested ShardBatch encoded without error")
	}
	// Hand-build the hostile frame the encoder refuses to produce.
	var w writer
	w.buf = append(w.buf, 0xC4, 0xAF, 7, tagShardBatch)
	w.str("a")
	w.str("b")
	w.buf = append(w.buf, byte(LayerLocal))
	w.str("") // group
	w.u64(1)  // one frame
	w.str("g")
	w.buf = append(w.buf, byte(LayerLocal), tagShardBatch)
	w.u64(0)
	if _, err := DecodeEnvelope(w.buf); err == nil {
		t.Fatal("nested ShardBatch decoded without error")
	}
}

// TestEntryWireSizeMatchesEncoding pins the size function the byte-budget
// flow control uses to the actual encoder output.
// encodeV4Envelope hand-encodes an AppendEntries/AppendEntriesResp frame
// in the v4 layout (session-ack and pending-stream fields, but no
// read-batch ID) so the v5 decoder's backward compatibility can be pinned
// without keeping an old encoder around.
func encodeV4Envelope(t *testing.T, env Envelope) []byte {
	t.Helper()
	var w writer
	w.buf = append(w.buf, 0xC4, 0xAF, 4)
	tag, err := msgTag(env.Msg)
	if err != nil {
		t.Fatal(err)
	}
	w.buf = append(w.buf, tag)
	w.str(string(env.From))
	w.str(string(env.To))
	w.buf = append(w.buf, byte(env.Layer))
	switch v := env.Msg.(type) {
	case AppendEntries:
		w.u64(uint64(v.Term))
		w.str(string(v.LeaderID))
		w.u64(uint64(v.PrevLogIndex))
		w.u64(uint64(v.PrevLogTerm))
		w.u64(uint64(len(v.Entries)))
		for i := range v.Entries {
			w.entry(v.Entries[i])
		}
		w.u64(uint64(v.LeaderCommit))
		w.u64(v.Round)
	case AppendEntriesResp:
		w.u64(uint64(v.Term))
		w.bool(v.Success)
		w.u64(uint64(v.MatchIndex))
		w.u64(uint64(v.LastLogIndex))
		w.u64(uint64(v.PendingBoundary))
		w.u64(v.PendingOffset)
		w.u64(v.Round)
	default:
		t.Fatalf("encodeV4Envelope: unsupported %T", env.Msg)
	}
	return w.buf
}

// TestDecodeV4FramesUnderV5 pins decode compatibility with v4 senders:
// heartbeats and acks without the read-batch ID decode with ReadCtx zero
// (such responders simply never confirm read batches).
func TestDecodeV4FramesUnderV5(t *testing.T) {
	ae := AppendEntries{Term: 9, LeaderID: "lead", PrevLogIndex: 8, PrevLogTerm: 7,
		Entries: []Entry{{Index: 9, Term: 9, Kind: KindNormal, Approval: ApprovedLeader,
			PID: ProposalID{Proposer: "p", Seq: 2}, SessionAck: 3, Data: []byte("v4")}},
		LeaderCommit: 6, Round: 11}
	got, err := DecodeEnvelope(encodeV4Envelope(t, Envelope{From: "l", To: "f", Layer: LayerLocal, Msg: ae}))
	if err != nil {
		t.Fatalf("v4 AppendEntries rejected: %v", err)
	}
	if m := got.Msg.(AppendEntries); m.Round != 11 || m.ReadCtx != 0 ||
		len(m.Entries) != 1 || m.Entries[0].SessionAck != 3 {
		t.Fatalf("v4 AppendEntries misdecoded: %+v", got.Msg)
	}

	resp := AppendEntriesResp{Term: 9, Success: true, MatchIndex: 12, LastLogIndex: 14,
		PendingBoundary: 40, PendingOffset: 1024, Round: 11}
	got, err = DecodeEnvelope(encodeV4Envelope(t, Envelope{From: "f", To: "l", Layer: LayerLocal, Msg: resp}))
	if err != nil {
		t.Fatalf("v4 AppendEntriesResp rejected: %v", err)
	}
	if m := got.Msg.(AppendEntriesResp); m.Round != 11 || m.ReadCtx != 0 ||
		m.PendingBoundary != 40 || m.PendingOffset != 1024 {
		t.Fatalf("v4 AppendEntriesResp misdecoded: %+v", got.Msg)
	}
}

func TestEntryWireSizeMatchesEncoding(t *testing.T) {
	for i, e := range sampleEntries() {
		if got, want := EntryWireSize(e), len(EncodeEntry(e)); got != want {
			t.Fatalf("entry %d: EntryWireSize = %d, len(EncodeEntry) = %d", i, got, want)
		}
	}
}

// TestDecodeEnvelopeRejectsUnknownVersions pins the loud-failure contract:
// versions below the compatibility floor or above the current version are
// ErrBadFrame, never a silent misdecode.
func TestDecodeEnvelopeRejectsUnknownVersions(t *testing.T) {
	env := Envelope{From: "a", To: "b", Layer: LayerLocal,
		Msg: CommitNotify{PID: ProposalID{Proposer: "p", Seq: 1}, Index: 2}}
	buf, err := EncodeEnvelope(env)
	if err != nil {
		t.Fatal(err)
	}
	for _, ver := range []byte{0, 1, 9, 10, 255} {
		bad := append([]byte(nil), buf...)
		bad[2] = ver
		if _, err := DecodeEnvelope(bad); err == nil {
			t.Fatalf("version %d decoded without error", ver)
		}
	}
}

func TestDecodeEnvelopeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{1, 2, 3},
		{0xC4, 0xAF, 1},              // truncated after header
		{0xC4, 0xAF, 9, 1, 0, 0, 0},  // wrong version
		{0xC4, 0xAF, 1, 99, 0, 0, 0}, // unknown tag
		bytes.Repeat([]byte{0xFF}, 64),
	}
	for i, c := range cases {
		if _, err := DecodeEnvelope(c); err == nil {
			t.Fatalf("case %d: garbage decoded without error", i)
		}
	}
}

func TestDecodeEnvelopeTruncationNeverPanics(t *testing.T) {
	for _, msg := range sampleMessages() {
		env := Envelope{From: "from", To: "to", Layer: LayerLocal, Msg: msg}
		buf, err := EncodeEnvelope(env)
		if err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut < len(buf); cut++ {
			// Any prefix must decode cleanly or error, never panic.
			_, _ = DecodeEnvelope(buf[:cut])
		}
	}
}

func TestDecodeEnvelopeBitFlipsNeverPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, msg := range sampleMessages() {
		env := Envelope{From: "from", To: "to", Layer: LayerLocal, Msg: msg}
		buf, err := EncodeEnvelope(env)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 200; trial++ {
			corrupt := append([]byte(nil), buf...)
			corrupt[rng.Intn(len(corrupt))] ^= byte(1 << rng.Intn(8))
			_, _ = DecodeEnvelope(corrupt)
		}
	}
}

// quickEntry generates a random entry for property tests.
func quickEntry(rng *rand.Rand) Entry {
	e := Entry{
		Index:    Index(rng.Uint64() >> 16),
		Term:     Term(rng.Uint64() >> 16),
		Kind:     EntryKind(rng.Intn(7) + 1),
		Approval: Approval(rng.Intn(2) + 1),
	}
	if rng.Intn(2) == 0 {
		e.PID = ProposalID{Proposer: NodeID(randName(rng)), Seq: rng.Uint64() >> 32}
	}
	if rng.Intn(3) == 0 {
		e.Session = SessionID(rng.Uint64() >> 32)
		e.SessionSeq = rng.Uint64() >> 32
	}
	if n := rng.Intn(64); n > 0 {
		e.Data = make([]byte, n)
		rng.Read(e.Data)
	}
	if rng.Intn(4) == 0 {
		cfg := NewConfig(NodeID(randName(rng)), NodeID(randName(rng)))
		e.Config = &cfg
	}
	return e
}

func randName(rng *rand.Rand) string {
	const letters = "abcdefghij"
	n := rng.Intn(8) + 1
	out := make([]byte, n)
	for i := range out {
		out[i] = letters[rng.Intn(len(letters))]
	}
	return string(out)
}

func TestQuickEntryRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := quickEntry(rng)
		got, err := DecodeEntry(EncodeEntry(e))
		if err != nil {
			return false
		}
		return reflect.DeepEqual(canonEntry(e.Clone()), canonEntry(got))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSnapshotRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := Snapshot{Meta: SnapshotMeta{
			LastIndex:   Index(rng.Uint64() >> 16),
			LastTerm:    Term(rng.Uint64() >> 16),
			Config:      NewConfig(NodeID(randName(rng)), NodeID(randName(rng))),
			ConfigIndex: Index(rng.Uint64() >> 32),
		}}
		if n := rng.Intn(256); n > 0 {
			s.Data = make([]byte, n)
			rng.Read(s.Data)
		}
		if n := rng.Intn(64); n > 0 {
			s.Sessions = make([]byte, n)
			rng.Read(s.Sessions)
		}
		got, err := DecodeSnapshot(EncodeSnapshot(s))
		if err != nil {
			return false
		}
		return reflect.DeepEqual(canonSnapshot(s.Clone()), canonSnapshot(got))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBatchRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := Batch{Cluster: NodeID(randName(rng)), Seq: rng.Uint64() >> 32}
		for i := 0; i < rng.Intn(20); i++ {
			item := BatchItem{PID: ProposalID{Proposer: NodeID(randName(rng)), Seq: uint64(i)}}
			if n := rng.Intn(32); n > 0 {
				item.Data = make([]byte, n)
				rng.Read(item.Data)
			}
			b.Items = append(b.Items, item)
		}
		got, err := DecodeBatch(EncodeBatch(b))
		if err != nil {
			return false
		}
		if got.Cluster != b.Cluster || got.Seq != b.Seq || len(got.Items) != len(b.Items) {
			return false
		}
		for i := range b.Items {
			if got.Items[i].PID != b.Items[i].PID || !bytes.Equal(got.Items[i].Data, b.Items[i].Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickGlobalStateDeltaRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := GlobalStateDelta{
			Era:         rng.Uint64() >> 32,
			Seq:         rng.Uint64() >> 32,
			Term:        Term(rng.Uint64() >> 32),
			VotedFor:    NodeID(randName(rng)),
			CommitIndex: Index(rng.Uint64() >> 32),
		}
		for i := 0; i < rng.Intn(6); i++ {
			d.Entries = append(d.Entries, quickEntry(rng))
		}
		got, err := DecodeGlobalStateDelta(EncodeGlobalStateDelta(d))
		if err != nil {
			return false
		}
		if got.Era != d.Era || got.Seq != d.Seq || got.Term != d.Term ||
			got.VotedFor != d.VotedFor || got.CommitIndex != d.CommitIndex ||
			len(got.Entries) != len(d.Entries) {
			return false
		}
		for i := range d.Entries {
			if !reflect.DeepEqual(canonEntry(d.Entries[i].Clone()), canonEntry(got.Entries[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
