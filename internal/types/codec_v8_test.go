package types

import (
	"bytes"
	"testing"
)

// Frame v8 compatibility pins. The v8 change is trace-context propagation
// behind wireTraceFlag: sampled entries, read specs/results and snapshot
// chunks grow a trace varint; unsampled bodies stay byte-identical to v7.

// encodeV7Envelope hand-encodes a frame in the v7 layout (group tag, no
// trace context anywhere) so the v8 decoder's backward compatibility can
// be pinned without keeping an old encoder around. Only traceless
// messages are representable in v7, which is the point.
func encodeV7Envelope(t *testing.T, env Envelope) []byte {
	t.Helper()
	var w writer
	w.buf = append(w.buf, 0xC4, 0xAF, 7)
	tag, err := msgTag(env.Msg)
	if err != nil {
		t.Fatal(err)
	}
	w.buf = append(w.buf, tag)
	w.str(string(env.From))
	w.str(string(env.To))
	w.buf = append(w.buf, byte(env.Layer))
	w.str(string(env.Group))
	switch v := env.Msg.(type) {
	case AppendEntries:
		w.u64(uint64(v.Term))
		w.str(string(v.LeaderID))
		w.u64(uint64(v.PrevLogIndex))
		w.u64(uint64(v.PrevLogTerm))
		w.u64(uint64(len(v.Entries)))
		for _, e := range v.Entries {
			if e.TraceID != 0 {
				t.Fatalf("traced entry has no v7 encoding")
			}
			w.entry(e)
		}
		w.u64(uint64(v.LeaderCommit))
		w.u64(v.Round)
		w.u64(v.ReadCtx)
	case ReadRequest:
		w.u64(uint64(len(v.Reads)))
		for _, s := range v.Reads {
			w.u64(s.ID)
			w.buf = append(w.buf, byte(s.Consistency))
		}
	case ReadReply:
		w.u64(uint64(len(v.Results)))
		for _, res := range v.Results {
			w.u64(res.ID)
			w.u64(uint64(res.Index))
			var ok byte
			if res.OK {
				ok = 1
			}
			w.buf = append(w.buf, ok)
		}
	case InstallSnapshot:
		w.u64(uint64(v.Term))
		w.str(string(v.LeaderID))
		w.snapshot(v.Snapshot)
		w.u64(uint64(v.Boundary))
		w.u64(v.Offset)
		w.bytes(v.Data)
		w.u64(uint64(v.Check))
		var done byte
		if v.Done {
			done = 1
		}
		w.buf = append(w.buf, done)
		w.u64(v.Round)
	default:
		t.Fatalf("encodeV7Envelope: unsupported %T", env.Msg)
	}
	return w.buf
}

// TestDecodeV7FramesUnderV8 pins decode compatibility with v7 senders:
// every trace-context carrier decodes with its trace ID zero and all
// surrounding fields intact.
func TestDecodeV7FramesUnderV8(t *testing.T) {
	ae := AppendEntries{Term: 9, LeaderID: "lead", PrevLogIndex: 8, PrevLogTerm: 7,
		Entries: []Entry{{Index: 9, Term: 9, Kind: KindNormal, Approval: ApprovedLeader,
			PID: ProposalID{Proposer: "p", Seq: 2}, Data: []byte("v7")}},
		LeaderCommit: 6, Round: 11, ReadCtx: 42}
	got, err := DecodeEnvelope(encodeV7Envelope(t, Envelope{From: "l", To: "f", Layer: LayerLocal, Group: "g1", Msg: ae}))
	if err != nil {
		t.Fatalf("v7 AppendEntries rejected: %v", err)
	}
	if m := got.Msg.(AppendEntries); got.Group != "g1" || m.ReadCtx != 42 ||
		len(m.Entries) != 1 || m.Entries[0].TraceID != 0 ||
		string(m.Entries[0].Data) != "v7" {
		t.Fatalf("v7 AppendEntries misdecoded: %+v", got.Msg)
	}

	rr := ReadRequest{Reads: []ReadSpec{{ID: 7, Consistency: ReadLinearizable}}}
	got, err = DecodeEnvelope(encodeV7Envelope(t, Envelope{From: "f", To: "l", Layer: LayerLocal, Msg: rr}))
	if err != nil {
		t.Fatalf("v7 ReadRequest rejected: %v", err)
	}
	if m := got.Msg.(ReadRequest); len(m.Reads) != 1 || m.Reads[0].Trace != 0 ||
		m.Reads[0].ID != 7 || m.Reads[0].Consistency != ReadLinearizable {
		t.Fatalf("v7 ReadRequest misdecoded: %+v", got.Msg)
	}

	rp := ReadReply{Results: []ReadResult{{ID: 7, Index: 99, OK: true}}}
	got, err = DecodeEnvelope(encodeV7Envelope(t, Envelope{From: "l", To: "f", Layer: LayerLocal, Msg: rp}))
	if err != nil {
		t.Fatalf("v7 ReadReply rejected: %v", err)
	}
	if m := got.Msg.(ReadReply); len(m.Results) != 1 || m.Results[0].Trace != 0 ||
		m.Results[0].Index != 99 || !m.Results[0].OK {
		t.Fatalf("v7 ReadReply misdecoded: %+v", got.Msg)
	}

	is := InstallSnapshot{Term: 13, LeaderID: "lead", Boundary: 100, Offset: 4096,
		Data: []byte{0x7E, 0x7F}, Done: true, Round: 6, Check: 0xDEADBEEF}
	got, err = DecodeEnvelope(encodeV7Envelope(t, Envelope{From: "l", To: "f", Layer: LayerLocal, Msg: is}))
	if err != nil {
		t.Fatalf("v7 InstallSnapshot rejected: %v", err)
	}
	if m := got.Msg.(InstallSnapshot); m.Trace != 0 || m.Check != 0xDEADBEEF ||
		!m.Done || m.Offset != 4096 || len(m.Data) != 2 {
		t.Fatalf("v7 InstallSnapshot misdecoded: %+v", got.Msg)
	}
}

// TestUnsampledV8BodiesByteIdenticalToV7 pins the zero-cost contract of
// the sampling default: with no trace context anywhere, the v8 encoder's
// output differs from the v7 layout in the version byte ONLY — zero
// trace-context bytes ride the wire for unsampled traffic.
func TestUnsampledV8BodiesByteIdenticalToV7(t *testing.T) {
	envs := []Envelope{
		{From: "l", To: "f", Layer: LayerLocal, Group: "g1", Msg: AppendEntries{
			Term: 9, LeaderID: "lead", PrevLogIndex: 8, PrevLogTerm: 7,
			Entries: []Entry{{Index: 9, Term: 9, Kind: KindNormal, Approval: ApprovedLeader,
				PID: ProposalID{Proposer: "p", Seq: 2}, Data: []byte("steady")}},
			LeaderCommit: 6, Round: 11, ReadCtx: 42}},
		{From: "f", To: "l", Layer: LayerLocal, Msg: ReadRequest{
			Reads: []ReadSpec{{ID: 7, Consistency: ReadLinearizable}}}},
		{From: "l", To: "f", Layer: LayerLocal, Msg: ReadReply{
			Results: []ReadResult{{ID: 7, Index: 99, OK: true}}}},
		{From: "l", To: "f", Layer: LayerLocal, Msg: InstallSnapshot{
			Term: 13, LeaderID: "lead", Boundary: 100, Offset: 4096,
			Data: []byte{0x7E}, Done: true, Round: 6, Check: 7}},
	}
	for _, env := range envs {
		v8, err := EncodeEnvelope(env)
		if err != nil {
			t.Fatalf("%s: encode: %v", env.Msg.MsgName(), err)
		}
		v7 := encodeV7Envelope(t, env)
		if v8[2] != 8 || v7[2] != 7 {
			t.Fatalf("%s: version bytes %d/%d", env.Msg.MsgName(), v8[2], v7[2])
		}
		if !bytes.Equal(v8[3:], v7[3:]) {
			t.Errorf("%s: unsampled v8 body diverged from v7 layout:\nv8: %x\nv7: %x",
				env.Msg.MsgName(), v8[3:], v7[3:])
		}
	}
}

// TestTraceFlagRejectedOnPreV8Frames pins the decode gate: the trace
// presence bit on a frame claiming an older version is a corrupt frame
// (legitimate old senders never set it), not a silent misdecode.
func TestTraceFlagRejectedOnPreV8Frames(t *testing.T) {
	env := Envelope{From: "l", To: "f", Layer: LayerLocal, Msg: AppendEntries{
		Term: 9, LeaderID: "lead", PrevLogIndex: 8, PrevLogTerm: 7,
		Entries: []Entry{{Index: 9, Term: 9, Kind: KindNormal, Approval: ApprovedLeader,
			PID: ProposalID{Proposer: "p", Seq: 2}, TraceID: 0xBEEF, Data: []byte("x")}},
		LeaderCommit: 6, Round: 11}}
	buf, err := EncodeEnvelope(env)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeEnvelope(buf); err != nil {
		t.Fatalf("traced v8 frame rejected: %v", err)
	}
	old := append([]byte(nil), buf...)
	old[2] = 7
	if _, err := DecodeEnvelope(old); err == nil {
		t.Fatal("trace flag on a v7 frame decoded without error")
	}
}

// TestTracedCarriersRoundTrip spot-checks the trace ID on every carrier
// surviving an encode/decode cycle end to end.
func TestTracedCarriersRoundTrip(t *testing.T) {
	const tid = 0xAB54A98CEB1F0A

	e := Entry{Index: 9, Term: 9, Kind: KindNormal, Approval: ApprovedSelf,
		PID: ProposalID{Proposer: "p", Seq: 2}, TraceID: tid, Data: []byte("x")}
	got, err := DecodeEntry(EncodeEntry(e))
	if err != nil || got.TraceID != tid || got.Kind != KindNormal {
		t.Fatalf("entry trace lost: %+v, %v", got, err)
	}

	env := Envelope{From: "f", To: "l", Layer: LayerLocal, Msg: ReadRequest{
		Reads: []ReadSpec{{ID: 7, Consistency: ReadLeaseBased, Trace: tid}}}}
	buf, err := EncodeEnvelope(env)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeEnvelope(buf)
	if err != nil {
		t.Fatal(err)
	}
	if m := dec.Msg.(ReadRequest); m.Reads[0].Trace != tid ||
		m.Reads[0].Consistency != ReadLeaseBased {
		t.Fatalf("read spec trace lost: %+v", dec.Msg)
	}

	env.Msg = ReadReply{Results: []ReadResult{{ID: 7, Index: 99, OK: true, Trace: tid}}}
	buf, err = EncodeEnvelope(env)
	if err != nil {
		t.Fatal(err)
	}
	if dec, err = DecodeEnvelope(buf); err != nil {
		t.Fatal(err)
	}
	if m := dec.Msg.(ReadReply); m.Results[0].Trace != tid || !m.Results[0].OK {
		t.Fatalf("read result trace lost: %+v", dec.Msg)
	}

	env.Msg = InstallSnapshot{Term: 13, LeaderID: "lead", Boundary: 100,
		Offset: 4096, Data: []byte{0x7E}, Done: true, Round: 6, Trace: tid}
	buf, err = EncodeEnvelope(env)
	if err != nil {
		t.Fatal(err)
	}
	if dec, err = DecodeEnvelope(buf); err != nil {
		t.Fatal(err)
	}
	if m := dec.Msg.(InstallSnapshot); m.Trace != tid || !m.Done {
		t.Fatalf("snapshot chunk trace lost: %+v", dec.Msg)
	}
}

// TestBatchTraceSection pins the batch payload's trailing trace section:
// sampled items round-trip their context, unsampled batches encode
// byte-identically to the pre-trace layout, and a pre-trace payload (no
// tail) decodes with every trace zero.
func TestBatchTraceSection(t *testing.T) {
	traced := Batch{Cluster: "cA", Seq: 3, Items: []BatchItem{
		{PID: ProposalID{Proposer: "a1", Seq: 1}, Data: []byte("one")},
		{PID: ProposalID{Proposer: "a2", Seq: 2}, Data: []byte("two"), Trace: 0xFEED},
		{PID: ProposalID{Proposer: "a3", Seq: 3}, Data: []byte("three"), Trace: 0xBEEF},
	}}
	got, err := DecodeBatch(EncodeBatch(traced))
	if err != nil {
		t.Fatal(err)
	}
	if got.Items[0].Trace != 0 || got.Items[1].Trace != 0xFEED || got.Items[2].Trace != 0xBEEF {
		t.Fatalf("batch traces misdecoded: %+v", got.Items)
	}

	plain := traced
	plain.Items = []BatchItem{
		{PID: ProposalID{Proposer: "a1", Seq: 1}, Data: []byte("one")},
		{PID: ProposalID{Proposer: "a2", Seq: 2}, Data: []byte("two")},
	}
	// The unsampled encoding IS the pre-trace layout: re-encoding the
	// decoded batch reproduces it bit for bit, and it ends right after the
	// last item (no tail).
	buf := EncodeBatch(plain)
	rt, err := DecodeBatch(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(EncodeBatch(rt), buf) {
		t.Fatal("unsampled batch re-encode diverged")
	}
	for _, it := range rt.Items {
		if it.Trace != 0 {
			t.Fatalf("unsampled batch decoded with trace: %+v", it)
		}
	}
}
