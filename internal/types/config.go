package types

import (
	"fmt"
	"sort"
	"strings"
)

// Config is a membership configuration: the set of voting members of a
// consensus group. Per the paper, the configuration in effect at a site is
// the one carried by the last KindConfig entry inserted into its log, and
// configurations change one member at a time.
type Config struct {
	// Members are the voting members, kept sorted for determinism.
	Members []NodeID
}

// NewConfig builds a configuration from the given members, de-duplicating
// and sorting them.
func NewConfig(members ...NodeID) Config {
	seen := make(map[NodeID]struct{}, len(members))
	out := make([]NodeID, 0, len(members))
	for _, m := range members {
		if m == None {
			continue
		}
		if _, ok := seen[m]; ok {
			continue
		}
		seen[m] = struct{}{}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return Config{Members: out}
}

// Clone deep-copies the configuration.
func (c Config) Clone() Config {
	return Config{Members: append([]NodeID(nil), c.Members...)}
}

// Size returns the number of voting members (the paper's M).
func (c Config) Size() int { return len(c.Members) }

// Contains reports whether id is a voting member.
func (c Config) Contains(id NodeID) bool {
	for _, m := range c.Members {
		if m == id {
			return true
		}
	}
	return false
}

// WithMember returns a new configuration that additionally contains id.
func (c Config) WithMember(id NodeID) Config {
	if c.Contains(id) {
		return c.Clone()
	}
	return NewConfig(append(append([]NodeID(nil), c.Members...), id)...)
}

// WithoutMember returns a new configuration that excludes id.
func (c Config) WithoutMember(id NodeID) Config {
	out := make([]NodeID, 0, len(c.Members))
	for _, m := range c.Members {
		if m != id {
			out = append(out, m)
		}
	}
	return Config{Members: out}
}

// Equal reports whether the two configurations have identical member sets.
func (c Config) Equal(o Config) bool {
	if len(c.Members) != len(o.Members) {
		return false
	}
	for i := range c.Members {
		if c.Members[i] != o.Members[i] {
			return false
		}
	}
	return true
}

// Others returns the members excluding self, in sorted order. It is the
// broadcast set for a site.
func (c Config) Others(self NodeID) []NodeID {
	out := make([]NodeID, 0, len(c.Members))
	for _, m := range c.Members {
		if m != self {
			out = append(out, m)
		}
	}
	return out
}

// String renders the member set.
func (c Config) String() string {
	parts := make([]string, len(c.Members))
	for i, m := range c.Members {
		parts[i] = string(m)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// ConfigEntry builds a KindConfig log entry for the given configuration.
// The caller stamps Index, Term and Approval.
func ConfigEntry(cfg Config, pid ProposalID) Entry {
	cc := cfg.Clone()
	return Entry{Kind: KindConfig, PID: pid, Config: &cc}
}

// Validate checks structural invariants and is used by storage recovery.
func (c Config) Validate() error {
	for i, m := range c.Members {
		if m == None {
			return fmt.Errorf("config: empty member at %d", i)
		}
		if i > 0 && c.Members[i-1] >= m {
			return fmt.Errorf("config: members not sorted/unique at %d", i)
		}
	}
	return nil
}
