package types

import (
	"bytes"
	"fmt"
)

// EntryKind classifies log entries. The consensus cores treat most kinds
// uniformly; the kind matters to the layers that interpret committed
// entries (applications, membership, C-Raft batching).
type EntryKind uint8

const (
	// KindNormal is an application entry: opaque Data proposed by a client.
	KindNormal EntryKind = iota + 1
	// KindNoop is an empty entry a new leader appends to establish a commit
	// point in its own term (Raft-thesis practice) or to fill a vote-free
	// gap index during Fast Raft recovery.
	KindNoop
	// KindConfig is a membership configuration entry. Config is non-nil.
	KindConfig
	// KindBatch is a C-Raft global-log entry carrying a batch of locally
	// committed application entries. Data holds an encoded Batch.
	KindBatch
	// KindGlobalState is a C-Raft local-log entry replicating a cluster
	// leader's inter-cluster consensus state. Data holds an encoded
	// GlobalStateDelta.
	KindGlobalState
	// KindSessionOpen registers a client session. The log index at which
	// the entry commits becomes the SessionID, so every replica assigns
	// the same identity.
	KindSessionOpen
	// KindSessionExpire is a leader clock entry driving session expiry:
	// Data carries a clock advance and TTL (see internal/session), and
	// every replica expires the same sessions when it applies the entry.
	KindSessionExpire
	// KindShardSplit is a shard-manager lifecycle entry committed in a
	// parent group: on apply, every member's manager creates the daughter
	// group named in the payload and moves the upper key range to it.
	// Defined here (with the other wire kinds) but interpreted only by
	// internal/shard; the cores replicate it like any data entry.
	KindShardSplit
	// KindShardMerge is a shard-manager lifecycle entry committed in the
	// retiring (right) group: on apply, the left neighbor named in the
	// payload absorbs the group's key range.
	KindShardMerge
)

// String names the kind for logs and tests.
func (k EntryKind) String() string {
	switch k {
	case KindNormal:
		return "normal"
	case KindNoop:
		return "noop"
	case KindConfig:
		return "config"
	case KindBatch:
		return "batch"
	case KindGlobalState:
		return "globalstate"
	case KindSessionOpen:
		return "sessionopen"
	case KindSessionExpire:
		return "sessionexpire"
	case KindShardSplit:
		return "shardsplit"
	case KindShardMerge:
		return "shardmerge"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Approval records who placed an entry in a site's log — the paper's
// insertedBy field. Self-approved entries were inserted directly on a
// proposer's broadcast; leader-approved entries were decided by a leader.
type Approval uint8

const (
	// ApprovedSelf marks an entry inserted by the site itself upon
	// receiving a proposer's broadcast (Fast Raft fast track).
	ApprovedSelf Approval = iota + 1
	// ApprovedLeader marks an entry decided by a leader: either appended by
	// the leader locally or received through AppendEntries.
	ApprovedLeader
)

// String names the approval state.
func (a Approval) String() string {
	switch a {
	case ApprovedSelf:
		return "self"
	case ApprovedLeader:
		return "leader"
	default:
		return fmt.Sprintf("approval(%d)", uint8(a))
	}
}

// Entry is one slot of the replicated log.
type Entry struct {
	// Index is the entry's position in the log (1-based).
	Index Index
	// Term is the term in which the entry was last (re-)stamped by a
	// leader. Self-approved entries carry the inserting site's current term
	// and are re-stamped when a leader decides them.
	Term Term
	// Kind classifies the entry.
	Kind EntryKind
	// Approval is the paper's insertedBy marker.
	Approval Approval
	// PID identifies the proposal, for de-duplication and commit
	// notification. Zero for leader-internal entries. A PID is stable only
	// within one proposer process lifetime; session entries additionally
	// carry (Session, SessionSeq), which survives restarts.
	PID ProposalID
	// Session ties the entry to an open client session for exactly-once
	// apply (0 = none): every replica skips applying duplicates of
	// (Session, SessionSeq) and answers with the cached response instead.
	Session SessionID
	// SessionSeq is the session-scoped sequence number, meaningful when
	// Session is non-zero.
	SessionSeq uint64
	// SessionAck is the client's retry floor, piggybacked on session
	// proposals (meaningful when Session is non-zero; 0 = no ack): the
	// client promises never to retry sequences below it, so every replica
	// drops the session's cached responses for those sequences when the
	// entry commits, instead of holding them until the LRU cap evicts them.
	SessionAck uint64
	// Data is the application payload (or encoded Batch/GlobalStateDelta).
	Data []byte
	// Config is set iff Kind == KindConfig.
	Config *Config
	// TraceID is the sampled causal-trace context minted at the origin
	// node (0 = unsampled, which is the default and costs zero wire
	// bytes). It rides the entry across forwards, replication, snapshots
	// and C-Raft batch hops so every node records the proposal's journey
	// into its flight recorder. Pure observability: it is excluded from
	// proposal identity (SameProposal) and from the auditor's entry
	// digest.
	TraceID uint64
}

// Clone returns a deep copy of the entry. Entries are cloned whenever they
// cross a node boundary so that in-memory transports cannot alias state.
func (e Entry) Clone() Entry {
	c := e
	if e.Data != nil {
		c.Data = append([]byte(nil), e.Data...)
	}
	if e.Config != nil {
		cc := e.Config.Clone()
		c.Config = &cc
	}
	return c
}

// SameProposal reports whether two entries denote the same proposed value.
// Session entries compare by (Session, SessionSeq) — the identity that
// survives proposer restarts; other entries with non-zero PIDs compare by
// PID; leader-internal entries compare by kind and payload.
func (e Entry) SameProposal(o Entry) bool {
	if !e.Session.IsZero() || !o.Session.IsZero() {
		return e.Session == o.Session && e.SessionSeq == o.SessionSeq
	}
	if !e.PID.IsZero() || !o.PID.IsZero() {
		return e.PID == o.PID
	}
	if e.Kind != o.Kind {
		return false
	}
	return bytes.Equal(e.Data, o.Data)
}

// String renders a compact description of the entry.
func (e Entry) String() string {
	return fmt.Sprintf("entry{i=%d t=%d %s %s %s len=%d}",
		e.Index, e.Term, e.Kind, e.Approval, e.PID, len(e.Data))
}

// CloneEntries deep-copies a slice of entries.
func CloneEntries(in []Entry) []Entry {
	if len(in) == 0 {
		return nil
	}
	out := make([]Entry, len(in))
	for i := range in {
		out[i] = in[i].Clone()
	}
	return out
}
