// Package types defines the identifiers, log entries, configurations and
// protocol messages shared by every consensus implementation in this
// repository (classic Raft, Fast Raft and C-Raft), together with a compact
// binary wire codec used by the UDP transport.
//
// The package is deliberately free of any protocol logic: it is the common
// vocabulary of the system.
package types

import "fmt"

// NodeID identifies a site (the paper's term for a participant). IDs are
// opaque strings; the transports route on them. At the C-Raft global level,
// NodeIDs name clusters rather than individual sites.
type NodeID string

// None is the zero NodeID, used where "no node" is meant (e.g. votedFor).
const None NodeID = ""

// GroupID names one consensus group inside a multi-group (sharded) process.
// The empty GroupID is the flat single-group namespace every pre-shard
// deployment lives in; shard managers assign non-empty IDs and the codec
// tags frames with them (wire v7).
type GroupID string

// Term is a Raft term number. Terms increase monotonically; each term has
// at most one leader.
type Term uint64

// Index is a position in the replicated log. Indices start at 1; 0 means
// "no entry".
type Index uint64

// SessionID identifies a client session for exactly-once proposal
// semantics. It is the log index at which the session's KindSessionOpen
// entry committed, so every replica derives the same ID without extra
// coordination (the Raft-dissertation convention). Zero means "no session".
type SessionID uint64

// IsZero reports whether the SessionID is unset.
func (s SessionID) IsZero() bool { return s == 0 }

// String renders the SessionID for logs and test failure messages.
func (s SessionID) String() string {
	if s == 0 {
		return "sess(-)"
	}
	return fmt.Sprintf("sess(%d)", uint64(s))
}

// ProposalID uniquely identifies a proposal across re-proposals: a proposer
// re-sends an entry under the same ProposalID until it learns the entry
// committed, and every node uses the ID to de-duplicate.
type ProposalID struct {
	// Proposer is the site that originated the proposal.
	Proposer NodeID
	// Seq is a proposer-local sequence number, unique per proposer.
	Seq uint64
}

// IsZero reports whether the ProposalID is unset. Leader-originated internal
// entries (no-ops) may carry a zero ProposalID.
func (p ProposalID) IsZero() bool { return p.Proposer == None && p.Seq == 0 }

// String renders the ProposalID for logs and test failure messages.
func (p ProposalID) String() string {
	if p.IsZero() {
		return "pid(-)"
	}
	return fmt.Sprintf("pid(%s/%d)", p.Proposer, p.Seq)
}

// Less provides a deterministic total order over ProposalIDs. It is used to
// break ties in the Fast Raft decide loop so that independent replays of the
// same vote multiset always pick the same winner.
func (p ProposalID) Less(q ProposalID) bool {
	if p.Proposer != q.Proposer {
		return p.Proposer < q.Proposer
	}
	return p.Seq < q.Seq
}
