package types

import "fmt"

// Layer distinguishes C-Raft's two consensus levels on the wire. Plain Fast
// Raft and classic Raft always use LayerLocal.
type Layer uint8

const (
	// LayerLocal is intra-cluster (or single-cluster) consensus traffic.
	LayerLocal Layer = iota + 1
	// LayerGlobal is inter-cluster consensus traffic between cluster
	// leaders.
	LayerGlobal
)

// String names the layer.
func (l Layer) String() string {
	switch l {
	case LayerLocal:
		return "local"
	case LayerGlobal:
		return "global"
	default:
		return fmt.Sprintf("layer(%d)", uint8(l))
	}
}

// Message is implemented by every protocol message. The concrete type set
// is closed; transports switch on it for encoding.
type Message interface {
	// MsgName returns a short stable name used in traces and the codec.
	MsgName() string
}

// Envelope wraps a message with routing information.
type Envelope struct {
	// From is the sender.
	From NodeID
	// To is the destination site (or cluster ID at LayerGlobal).
	To NodeID
	// Layer selects the consensus level the message belongs to.
	Layer Layer
	// Group names the consensus group the message belongs to in a
	// multi-group (sharded) process; empty for flat single-group
	// deployments (wire v7 — v6 frames decode with Group empty).
	Group GroupID
	// Msg is the payload.
	Msg Message
}

// String renders the envelope for traces.
func (e Envelope) String() string {
	if e.Group != "" {
		return fmt.Sprintf("%s->%s %s/%s %s", e.From, e.To, e.Layer, e.Group, e.Msg.MsgName())
	}
	return fmt.Sprintf("%s->%s %s %s", e.From, e.To, e.Layer, e.Msg.MsgName())
}

// ProposeEntry is a Fast Raft proposer's broadcast: "insert Entry at Index".
// Every site that receives it inserts the entry if the slot is free and
// votes to the leader with the slot's occupant.
type ProposeEntry struct {
	// Index is the log position the proposer chose.
	Index Index
	// Entry carries the proposed value (PID, Kind, Data). Term and Approval
	// are assigned by the receiving site.
	Entry Entry
}

// MsgName implements Message.
func (ProposeEntry) MsgName() string { return "ProposeEntry" }

// VoteEntry is a Fast Raft follower's vote to the leader after processing a
// ProposeEntry: it reports the occupant of the slot (which may differ from
// the proposed entry) plus the follower's commitIndex.
type VoteEntry struct {
	// Term is the voter's current term; stale votes are ignored.
	Term Term
	// Index is the log slot voted on.
	Index Index
	// Entry is the voter's log[Index] at vote time.
	Entry Entry
	// CommitIndex is the voter's commit index; the leader uses it to reset
	// nextIndex so the voter's log converges with the leader's.
	CommitIndex Index
}

// MsgName implements Message.
func (VoteEntry) MsgName() string { return "VoteEntry" }

// ClientPropose carries a proposal to the leader in classic Raft (where
// proposers do not broadcast). The leader assigns the index.
type ClientPropose struct {
	// Entry carries PID, Kind and Data; Index/Term/Approval are unset.
	Entry Entry
}

// MsgName implements Message.
func (ClientPropose) MsgName() string { return "ClientPropose" }

// AppendEntries is the leader's replication/heartbeat message.
type AppendEntries struct {
	// Term is the leader's term.
	Term Term
	// LeaderID lets followers redirect proposers and joiners.
	LeaderID NodeID
	// PrevLogIndex/PrevLogTerm identify the entry immediately preceding
	// Entries for the consistency check.
	PrevLogIndex Index
	// PrevLogTerm is the term of the entry at PrevLogIndex.
	PrevLogTerm Term
	// Entries are the leader-approved entries to insert (may be empty for
	// pure heartbeats).
	Entries []Entry
	// LeaderCommit is the leader's commitIndex.
	LeaderCommit Index
	// Round numbers the heartbeat round, used by the leader to match
	// responses when detecting silent leaves.
	Round uint64
	// ReadCtx is the read-batch ID of the broadcast round (0 = none): every
	// ReadIndex read registered before the round was dispatched is batched
	// under it, and a quorum of responses echoing a ReadCtx at or above it
	// confirms the whole batch with this single heartbeat exchange (wire v5).
	ReadCtx uint64
}

// MsgName implements Message.
func (AppendEntries) MsgName() string { return "AppendEntries" }

// AppendEntriesResp acknowledges an AppendEntries message.
type AppendEntriesResp struct {
	// Term is the responder's current term, for the leader to update itself.
	Term Term
	// Success is true if the consistency check passed and entries were
	// applied.
	Success bool
	// MatchIndex is the highest leader-approved index known replicated at
	// the responder (valid when Success).
	MatchIndex Index
	// LastLogIndex hints the responder's last log index so a leader can
	// back off nextIndex quickly on failure.
	LastLogIndex Index
	// PendingBoundary/PendingOffset report a partially received snapshot
	// stream (zero when none): the boundary of the stream buffered in the
	// responder's reassembler and the contiguous byte count it holds. A new
	// leader whose snapshot matches the boundary seeds its transfer cursor
	// from the offset, continuing its predecessor's stream instead of
	// restarting from byte 0.
	PendingBoundary Index
	// PendingOffset is the contiguous byte count buffered for
	// PendingBoundary.
	PendingOffset uint64
	// Round echoes AppendEntries.Round.
	Round uint64
	// ReadCtx echoes AppendEntries.ReadCtx, acknowledging every read batch
	// at or below it (wire v5; zero from older responders, which therefore
	// never confirm reads).
	ReadCtx uint64
}

// MsgName implements Message.
func (AppendEntriesResp) MsgName() string { return "AppendEntriesResp" }

// RequestVote solicits election votes. In Fast Raft the candidate's log
// position counts only leader-approved entries.
type RequestVote struct {
	// Term is the candidate's (already incremented) term.
	Term Term
	// CandidateID is the candidate requesting the vote.
	CandidateID NodeID
	// LastLogIndex is the candidate's last (leader-approved, for Fast Raft)
	// log index.
	LastLogIndex Index
	// LastLogTerm is the term of that entry.
	LastLogTerm Term
	// Transfer marks an election started on a leader's TimeoutNow order
	// (leadership transfer). Voters skip the election-stickiness check for
	// transfer elections: the old leader is known-live and stepping aside
	// deliberately, so refusing "a fresh leader exists" votes would make
	// every transfer time out (wire v7; zero from older senders).
	Transfer bool
}

// MsgName implements Message.
func (RequestVote) MsgName() string { return "RequestVote" }

// RequestVoteResp answers a RequestVote. In Fast Raft a granted vote also
// carries the voter's self-approved entries for the recovery algorithm.
type RequestVoteResp struct {
	// Term is the responder's current term.
	Term Term
	// Granted is true if the vote was granted.
	Granted bool
	// SelfApproved are all self-approved entries in the voter's log
	// (Fast Raft recovery input; empty in classic Raft).
	SelfApproved []Entry
}

// MsgName implements Message.
func (RequestVoteResp) MsgName() string { return "RequestVoteResp" }

// CommitNotify tells a proposer that its proposal committed. It is sent by
// the leader on commit, and by any site that observes a duplicate proposal
// of an already committed entry.
type CommitNotify struct {
	// PID identifies the proposal.
	PID ProposalID
	// Index is the log position at which the proposal committed.
	Index Index
}

// MsgName implements Message.
func (CommitNotify) MsgName() string { return "CommitNotify" }

// JoinRequest asks to join the configuration. At the C-Raft global layer it
// asks to form a new cluster.
type JoinRequest struct {
	// Site is the joining site (or new cluster ID at LayerGlobal).
	Site NodeID
}

// MsgName implements Message.
func (JoinRequest) MsgName() string { return "JoinRequest" }

// JoinRedirect points a joiner at the current leader.
type JoinRedirect struct {
	// Leader is the current leader known to the responder (None if
	// unknown).
	Leader NodeID
}

// MsgName implements Message.
func (JoinRedirect) MsgName() string { return "JoinRedirect" }

// JoinAccepted tells a joiner that the configuration including it has
// committed and it is now a voting member.
type JoinAccepted struct {
	// ConfigIndex is the log index of the committed configuration entry.
	ConfigIndex Index
}

// MsgName implements Message.
func (JoinAccepted) MsgName() string { return "JoinAccepted" }

// LeaveRequest announces that a site wishes to leave the configuration.
type LeaveRequest struct {
	// Site is the leaving site.
	Site NodeID
}

// MsgName implements Message.
func (LeaveRequest) MsgName() string { return "LeaveRequest" }

// InstallSnapshot is the leader's snapshot transfer: when a follower's
// replication position falls below the leader's compacted log prefix, the
// leader ships its latest snapshot instead of AppendEntries. The follower
// replaces its state machine and log prefix with the snapshot and resumes
// replication from the boundary + 1.
//
// Two transfer modes share this message. In the legacy whole-image mode
// (wire v2, or v3 with chunking disabled) Snapshot carries the complete
// image and Done is true. In chunked mode (wire v3, MaxSnapshotChunk set)
// Snapshot is zero and each message carries one Data slice of the encoded
// snapshot (EncodeSnapshot output, sessions section included) at Offset;
// Done marks the final chunk. Boundary identifies the stream in both
// modes, so a follower reassembling chunks can discard a superseded
// stream when the leader compacts again mid-transfer.
type InstallSnapshot struct {
	// Term is the leader's term.
	Term Term
	// LeaderID lets followers redirect proposers and joiners.
	LeaderID NodeID
	// Snapshot is the whole image in legacy mode; zero when chunked.
	Snapshot Snapshot
	// Boundary is the snapshot's last covered log index (stream identity).
	Boundary Index
	// Offset is the byte offset of Data within the encoded snapshot.
	Offset uint64
	// Data is one chunk of the encoded snapshot (nil in legacy mode).
	Data []byte
	// Check is the IEEE CRC-32 of the entire encoded snapshot the chunks
	// slice (chunked mode only). It names the stream's content: a follower
	// continues accumulating chunks for (Boundary, Check) across leader
	// changes — successor leaders of the same boundary encode byte-identical
	// snapshots — and restarts cleanly if a sender's encoding diverges.
	Check uint32
	// Done marks the final chunk (always true in legacy mode).
	Done bool
	// Trace is the stream's sampled trace context (0 = unsampled): minted
	// when the leader opens the stream, constant across its chunks, so a
	// follower's catch-up-by-snapshot shows up in the cross-node trace
	// tree.
	Trace uint64
	// Round numbers the heartbeat round, matching AppendEntries.Round for
	// silent-leave accounting.
	Round uint64
}

// MsgName implements Message.
func (InstallSnapshot) MsgName() string { return "InstallSnapshot" }

// InstallSnapshotReply acknowledges an InstallSnapshot message.
type InstallSnapshotReply struct {
	// Term is the responder's current term.
	Term Term
	// LastIndex is the responder's resulting snapshot/commit boundary: the
	// leader advances its match/next view from it, and a LastIndex at or
	// beyond the pending boundary completes the transfer.
	LastIndex Index
	// Boundary echoes the stream being acknowledged (chunked mode).
	Boundary Index
	// Offset is the contiguous byte count the responder has buffered for
	// Boundary; the leader resumes transmission from here after a timeout
	// and never re-sends acknowledged chunks.
	Offset uint64
	// Round echoes InstallSnapshot.Round.
	Round uint64
}

// MsgName implements Message.
func (InstallSnapshotReply) MsgName() string { return "InstallSnapshotReply" }

// ReadSpec names one forwarded read inside a ReadRequest batch.
type ReadSpec struct {
	// ID is the origin's read token, echoed in the reply.
	ID uint64
	// Consistency is the requested read mode (stale reads are served
	// locally and never forwarded).
	Consistency ReadConsistency
	// Trace is the read's sampled trace context (0 = unsampled), minted at
	// the origin and echoed back in the ReadResult.
	Trace uint64
}

// ReadRequest forwards linearizable (or lease) reads from the node that
// received them to the leader, which runs them through its read path and
// answers with a ReadReply. The origin coalesces every read queued while a
// round-trip is in flight into the next request, so one message covers a
// whole batch. Requests write nothing to the log; lost requests or replies
// are re-sent under the same IDs (duplicates are coalesced leader-side).
type ReadRequest struct {
	// Reads are the forwarded reads, oldest first.
	Reads []ReadSpec
}

// MsgName implements Message.
func (ReadRequest) MsgName() string { return "ReadRequest" }

// ReadResult resolves one forwarded read inside a ReadReply batch.
type ReadResult struct {
	// ID echoes the ReadSpec.ID.
	ID uint64
	// Index is the linearization index (valid when OK).
	Index Index
	// OK is false when the responder could not serve the read (not leader,
	// or deposed while the read was pending); the origin retries.
	OK bool
	// Trace echoes the ReadSpec.Trace (0 = unsampled).
	Trace uint64
}

// ReadReply answers forwarded reads once the leader's read path released
// them. Reads from one origin that resolve together are batched into one
// reply.
type ReadReply struct {
	// Results resolve the forwarded reads (not necessarily all of one
	// request: ReadIndex reads in a batch may resolve across rounds).
	Results []ReadResult
}

// MsgName implements Message.
func (ReadReply) MsgName() string { return "ReadReply" }

// TimeoutNow is the leadership-transfer order: a leader that wants to hand
// off sends it to the chosen successor, which immediately starts an election
// for the next term with RequestVote.Transfer set (so voters skip election
// stickiness). Lost orders are harmless — the old leader keeps leading.
type TimeoutNow struct {
	// Term is the sender's term; orders from stale leaders are ignored.
	Term Term
}

// MsgName implements Message.
func (TimeoutNow) MsgName() string { return "TimeoutNow" }

// ShardFrame is one group's message inside a ShardBatch: the payload of a
// single-group envelope minus the From/To routing, which the outer batch
// envelope carries once for every frame.
type ShardFrame struct {
	// Group names the consensus group the frame belongs to.
	Group GroupID
	// Layer selects the consensus level within the group.
	Layer Layer
	// Msg is the payload.
	Msg Message
}

// ShardBatch coalesces the outbound frames of many consensus groups headed
// to the same destination process into one datagram: a shard manager drains
// every group's outbox per tick window and packs all frames sharing a
// destination under one envelope (wire v7). Batches never nest.
type ShardBatch struct {
	// Frames are the coalesced messages, in per-group send order.
	Frames []ShardFrame
}

// MsgName implements Message.
func (ShardBatch) MsgName() string { return "ShardBatch" }

// Compile-time check that all message types satisfy Message.
var (
	_ Message = ProposeEntry{}
	_ Message = VoteEntry{}
	_ Message = ClientPropose{}
	_ Message = AppendEntries{}
	_ Message = AppendEntriesResp{}
	_ Message = RequestVote{}
	_ Message = RequestVoteResp{}
	_ Message = CommitNotify{}
	_ Message = JoinRequest{}
	_ Message = JoinRedirect{}
	_ Message = JoinAccepted{}
	_ Message = LeaveRequest{}
	_ Message = InstallSnapshot{}
	_ Message = InstallSnapshotReply{}
	_ Message = ReadRequest{}
	_ Message = ReadReply{}
	_ Message = TimeoutNow{}
	_ Message = ShardBatch{}
)

// CloneMessage deep-copies a message so transports never alias node state.
func CloneMessage(m Message) Message {
	switch v := m.(type) {
	case ProposeEntry:
		v.Entry = v.Entry.Clone()
		return v
	case VoteEntry:
		v.Entry = v.Entry.Clone()
		return v
	case ClientPropose:
		v.Entry = v.Entry.Clone()
		return v
	case AppendEntries:
		v.Entries = CloneEntries(v.Entries)
		return v
	case AppendEntriesResp:
		return v
	case RequestVote:
		return v
	case RequestVoteResp:
		v.SelfApproved = CloneEntries(v.SelfApproved)
		return v
	case InstallSnapshot:
		v.Snapshot = v.Snapshot.Clone()
		if v.Data != nil {
			v.Data = append([]byte(nil), v.Data...)
		}
		return v
	case ReadRequest:
		v.Reads = append([]ReadSpec(nil), v.Reads...)
		return v
	case ReadReply:
		v.Results = append([]ReadResult(nil), v.Results...)
		return v
	case ShardBatch:
		frames := make([]ShardFrame, len(v.Frames))
		for i, f := range v.Frames {
			f.Msg = CloneMessage(f.Msg)
			frames[i] = f
		}
		v.Frames = frames
		return v
	case CommitNotify, JoinRequest, JoinRedirect, JoinAccepted, LeaveRequest,
		InstallSnapshotReply, TimeoutNow:
		return v
	default:
		return m
	}
}
