package types

import "sync"

// Pooled entry slices for the replication hot path.
//
// Every AppendEntries message carries an []Entry that previously lived for
// exactly one encode (or one decode + handler call) before becoming garbage.
// The pool recycles those backing arrays. Only the slice itself is pooled —
// the Data payloads inside the entries are never reused, so an entry copied
// out of a pooled slice (as the cores do when installing entries into their
// logs) stays valid after the slice is recycled.
//
// Recycling is strictly opt-in and only valid for owners that serialize the
// message: a transport that hands the live Entries slice to another goroutine
// or process-local peer (the in-proc harness transports) must NOT recycle.
// The UDP transport recycles after encoding on send and after the handler
// returns on receive.

var entryPool = sync.Pool{
	New: func() any { s := make([]Entry, 0, 32); return &s },
}

// GetEntries returns an empty entry slice with capacity for at least the
// hint (pool-recycled when possible). Callers append into it and may pass
// the filled slice through an Envelope; see RecycleEnvelope for give-back.
func GetEntries(hint int) []Entry {
	p := entryPool.Get().(*[]Entry)
	s := (*p)[:0]
	if cap(s) < hint {
		s = make([]Entry, 0, hint)
	}
	return s
}

// RecycleEntries returns a slice obtained from GetEntries (or any
// single-owner entry slice) to the pool. Elements are zeroed first so the
// pool does not pin Data payloads or Config memberships.
func RecycleEntries(es []Entry) {
	if cap(es) == 0 {
		return
	}
	es = es[:cap(es)]
	for i := range es {
		es[i] = Entry{}
	}
	es = es[:0]
	entryPool.Put(&es)
}

// RecycleEnvelope returns the recyclable parts of a message to the pools.
// Call it only when this goroutine is the envelope's last owner (after
// encoding it onto the wire, or after a decode handler returned) — never on
// an envelope delivered by reference to an in-process peer.
func RecycleEnvelope(env Envelope) {
	recycleMessage(env.Msg)
}

func recycleMessage(m Message) {
	switch v := m.(type) {
	case AppendEntries:
		RecycleEntries(v.Entries)
	case RequestVoteResp:
		RecycleEntries(v.SelfApproved)
	case ShardBatch:
		for _, f := range v.Frames {
			recycleMessage(f.Msg)
		}
	}
}
