package types

import "fmt"

// ReadConsistency selects how strongly a Read is ordered against writes.
type ReadConsistency uint8

const (
	// ReadLinearizable serves the read through a ReadIndex quorum round: the
	// leader records its commit index, confirms leadership with one
	// heartbeat round (the read-batch ID piggybacks on the round), and the
	// read resolves once the state machine may be read at the recorded
	// index. No log entry is written.
	ReadLinearizable ReadConsistency = iota + 1
	// ReadLeaseBased serves the read clock-free from the leader while its
	// lease — established by a previous confirmed heartbeat round and
	// bounded below the election timeout — is valid, falling back to a
	// ReadIndex round when it is not. Linearizable under the bounded
	// clock-drift assumption the lease window is derated for.
	ReadLeaseBased
	// ReadStale serves the read immediately from the local commit index of
	// whichever node received it, leader or not. It may lag arbitrarily
	// behind the cluster; it never blocks and needs no quorum.
	ReadStale
	// ReadFollowerLocal serves the read from the RECEIVING node's state
	// machine, linearizably: the node obtains a quorum-confirmed index from
	// the leader (the usual ReadIndex handshake), then holds the read until
	// its own commit index reaches that index. The leader round costs the
	// same as ReadLinearizable, but the data never moves — the follower
	// answers from local state, so large reads skip the leader entirely.
	// On the leader it degenerates to ReadLinearizable.
	ReadFollowerLocal
)

// String names the consistency mode.
func (c ReadConsistency) String() string {
	switch c {
	case ReadLinearizable:
		return "linearizable"
	case ReadLeaseBased:
		return "lease"
	case ReadStale:
		return "stale"
	case ReadFollowerLocal:
		return "follower-local"
	default:
		return fmt.Sprintf("consistency(%d)", uint8(c))
	}
}

// ReadDone resolves one read registered with a core's Read method: the
// caller may serve the read from its state machine once it has applied
// through Index. OK=false means the read could not be served (the serving
// leader was deposed, or the node cannot reach one) and the caller should
// retry.
type ReadDone struct {
	// ID is the read token returned by Read.
	ID uint64
	// Index is the linearization point: the log index the state machine
	// must have applied before the read's result is returned.
	Index Index
	// OK reports whether the read was confirmed.
	OK bool
}
