package types

import "fmt"

// Role is a site's current role in a term (the paper's proposer role is
// orthogonal: any site may propose).
type Role uint8

const (
	// RoleFollower participates in consensus on entries decided by the
	// leader.
	RoleFollower Role = iota + 1
	// RoleCandidate is attempting to be elected leader.
	RoleCandidate
	// RoleLeader coordinates consensus for the term.
	RoleLeader
)

// String names the role.
func (r Role) String() string {
	switch r {
	case RoleFollower:
		return "follower"
	case RoleCandidate:
		return "candidate"
	case RoleLeader:
		return "leader"
	default:
		return fmt.Sprintf("role(%d)", uint8(r))
	}
}

// Resolution reports that a locally originated proposal was observed
// committed, either via a CommitNotify message or by watching the local
// committed stream. The experiment harness turns resolutions into latency
// samples.
type Resolution struct {
	// PID is the resolved proposal.
	PID ProposalID
	// Index is the log index it committed at.
	Index Index
}
