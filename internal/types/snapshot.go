package types

import "fmt"

// SnapshotMeta describes the log prefix a snapshot replaces. Everything a
// site needs to resume consensus above the compacted prefix is here: the
// boundary entry's coordinates and the membership in effect at it.
type SnapshotMeta struct {
	// LastIndex is the index of the last log entry covered by the
	// snapshot. All entries at or below it are compacted away.
	LastIndex Index
	// LastTerm is the term of the entry at LastIndex, kept for the
	// AppendEntries consistency check at the boundary.
	LastTerm Term
	// Config is the membership configuration in effect at LastIndex.
	Config Config
	// ConfigIndex is the log index the configuration came from (0 for a
	// bootstrap configuration).
	ConfigIndex Index
}

// Snapshot is a point-in-time image of the replicated state machine: the
// application's serialized state plus the metadata locating it in the log.
// Snapshots cover only committed entries.
type Snapshot struct {
	// Meta locates the snapshot in the log.
	Meta SnapshotMeta
	// Data is the application state-machine image (opaque to consensus;
	// produced and consumed by a Snapshotter).
	Data []byte
	// Sessions is the encoded client-session registry as of Meta.LastIndex
	// (see internal/session). It makes proposal de-duplication survive
	// restarts and log compaction: a replica restored from this snapshot
	// still recognizes retries of proposals the compacted prefix applied.
	// Empty when no sessions were ever opened.
	Sessions []byte
}

// IsZero reports whether the snapshot is unset (no compaction yet).
func (s Snapshot) IsZero() bool { return s.Meta.LastIndex == 0 }

// Clone deep-copies the snapshot.
func (s Snapshot) Clone() Snapshot {
	c := s
	c.Meta.Config = s.Meta.Config.Clone()
	if s.Data != nil {
		c.Data = append([]byte(nil), s.Data...)
	}
	if s.Sessions != nil {
		c.Sessions = append([]byte(nil), s.Sessions...)
	}
	return c
}

// String summarizes the snapshot for traces.
func (s Snapshot) String() string {
	return fmt.Sprintf("snapshot{i=%d t=%d cfg=%s len=%d sess=%d}",
		s.Meta.LastIndex, s.Meta.LastTerm, s.Meta.Config, len(s.Data), len(s.Sessions))
}

// Snapshotter is implemented by the application state machine to enable
// log compaction. Consensus calls Snapshot when the compaction threshold
// is reached and Restore when recovering from (or being sent) a snapshot.
type Snapshotter interface {
	// Snapshot serializes the state machine. applied is the index of the
	// last committed entry reflected in data; the log is compacted no
	// further than applied, so a state machine that applies commits
	// asynchronously is never snapshotted ahead of itself.
	Snapshot() (data []byte, applied Index, err error)
	// Restore replaces the state machine with the snapshot contents. It is
	// called on open when stable storage holds a snapshot, and when the
	// leader installs a snapshot on a lagging follower.
	Restore(snap Snapshot) error
}

// EncodeSnapshot serializes a snapshot (used by the WAL sidecar and the
// wire codec).
func EncodeSnapshot(s Snapshot) []byte {
	var w writer
	w.snapshot(s)
	return w.buf
}

// DecodeSnapshot parses a snapshot produced by EncodeSnapshot.
func DecodeSnapshot(data []byte) (Snapshot, error) {
	r := reader{buf: data}
	s := r.snapshot()
	if r.err != nil {
		return Snapshot{}, fmt.Errorf("types: decode snapshot: %w", r.err)
	}
	return s, nil
}

func (w *writer) snapshot(s Snapshot) {
	w.u64(uint64(s.Meta.LastIndex))
	w.u64(uint64(s.Meta.LastTerm))
	w.u64(uint64(s.Meta.ConfigIndex))
	w.u64(uint64(len(s.Meta.Config.Members)))
	for _, m := range s.Meta.Config.Members {
		w.str(string(m))
	}
	w.bytes(s.Data)
	w.bytes(s.Sessions)
}

func (r *reader) snapshot() Snapshot {
	var s Snapshot
	s.Meta.LastIndex = Index(r.u64())
	s.Meta.LastTerm = Term(r.u64())
	s.Meta.ConfigIndex = Index(r.u64())
	n := r.u64()
	if r.err == nil && n > uint64(len(r.buf)) {
		r.err = ErrBadFrame
		return s
	}
	members := make([]NodeID, 0, n)
	for i := uint64(0); i < n && r.err == nil; i++ {
		members = append(members, NodeID(r.str()))
	}
	s.Meta.Config = Config{Members: members}
	s.Data = r.bytes()
	// Snapshots written before the session subsystem end here; treat a
	// cleanly exhausted buffer as "no sessions" so old WAL sidecars load.
	if r.err == nil && r.off < len(r.buf) {
		s.Sessions = r.bytes()
	}
	return s
}
