package types

import (
	"testing"
)

func TestConfigBasics(t *testing.T) {
	c := NewConfig("b", "a", "c", "a") // duplicates removed, sorted
	if c.Size() != 3 {
		t.Fatalf("size = %d, want 3", c.Size())
	}
	if got := c.String(); got != "{a,b,c}" {
		t.Fatalf("String() = %q", got)
	}
	if !c.Contains("b") || c.Contains("z") {
		t.Fatal("Contains wrong")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigWithWithoutMember(t *testing.T) {
	c := NewConfig("a", "b")
	d := c.WithMember("c")
	if !d.Contains("c") || c.Contains("c") {
		t.Fatal("WithMember must not mutate the receiver")
	}
	e := d.WithoutMember("a")
	if e.Contains("a") || !d.Contains("a") {
		t.Fatal("WithoutMember must not mutate the receiver")
	}
	if same := d.WithMember("c"); !same.Equal(d) {
		t.Fatal("WithMember of existing member should be identity")
	}
}

func TestConfigOthers(t *testing.T) {
	c := NewConfig("a", "b", "c")
	others := c.Others("b")
	if len(others) != 2 || others[0] != "a" || others[1] != "c" {
		t.Fatalf("Others = %v", others)
	}
	if got := c.Others("zz"); len(got) != 3 {
		t.Fatalf("Others for non-member = %v", got)
	}
}

func TestEntryCloneIsDeep(t *testing.T) {
	cfg := NewConfig("a")
	e := Entry{Data: []byte{1, 2, 3}, Config: &cfg}
	c := e.Clone()
	c.Data[0] = 9
	c.Config.Members[0] = "z"
	if e.Data[0] != 1 {
		t.Fatal("Clone aliases Data")
	}
	if e.Config.Members[0] != "a" {
		t.Fatal("Clone aliases Config")
	}
}

func TestEntrySameProposal(t *testing.T) {
	p1 := ProposalID{Proposer: "a", Seq: 1}
	p2 := ProposalID{Proposer: "a", Seq: 2}
	tests := []struct {
		name string
		a, b Entry
		want bool
	}{
		{"same pid", Entry{PID: p1, Data: []byte("x")}, Entry{PID: p1, Data: []byte("y")}, true},
		{"different pid", Entry{PID: p1}, Entry{PID: p2}, false},
		{"pid vs none", Entry{PID: p1}, Entry{Kind: KindNoop}, false},
		{"noop vs noop", Entry{Kind: KindNoop}, Entry{Kind: KindNoop}, true},
		{"kind mismatch", Entry{Kind: KindNoop}, Entry{Kind: KindNormal}, false},
		{"payload match", Entry{Kind: KindNormal, Data: []byte("x")},
			Entry{Kind: KindNormal, Data: []byte("x")}, true},
		{"payload mismatch", Entry{Kind: KindNormal, Data: []byte("x")},
			Entry{Kind: KindNormal, Data: []byte("y")}, false},
	}
	for _, tt := range tests {
		if got := tt.a.SameProposal(tt.b); got != tt.want {
			t.Errorf("%s: SameProposal = %v, want %v", tt.name, got, tt.want)
		}
		if got := tt.b.SameProposal(tt.a); got != tt.want {
			t.Errorf("%s (sym): SameProposal = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestProposalIDOrder(t *testing.T) {
	a := ProposalID{Proposer: "a", Seq: 2}
	b := ProposalID{Proposer: "b", Seq: 1}
	c := ProposalID{Proposer: "a", Seq: 3}
	if !a.Less(b) || b.Less(a) {
		t.Fatal("proposer order broken")
	}
	if !a.Less(c) || c.Less(a) {
		t.Fatal("seq order broken")
	}
	if a.Less(a) {
		t.Fatal("irreflexivity broken")
	}
}

func TestCloneMessageDeepCopies(t *testing.T) {
	e := Entry{Data: []byte("orig"), PID: ProposalID{Proposer: "p", Seq: 1}}
	m := AppendEntries{Entries: []Entry{e}}
	c, ok := CloneMessage(m).(AppendEntries)
	if !ok {
		t.Fatal("clone changed type")
	}
	c.Entries[0].Data[0] = 'X'
	if m.Entries[0].Data[0] != 'o' {
		t.Fatal("CloneMessage aliases entry data")
	}
}

func TestKindAndRoleStrings(t *testing.T) {
	if KindNormal.String() != "normal" || KindGlobalState.String() != "globalstate" {
		t.Fatal("kind strings")
	}
	if ApprovedSelf.String() != "self" || ApprovedLeader.String() != "leader" {
		t.Fatal("approval strings")
	}
	if RoleLeader.String() != "leader" || RoleCandidate.String() != "candidate" {
		t.Fatal("role strings")
	}
	if LayerLocal.String() != "local" || LayerGlobal.String() != "global" {
		t.Fatal("layer strings")
	}
	if EntryKind(99).String() == "" || Role(99).String() == "" {
		t.Fatal("unknown values must still render")
	}
}

func TestConfigEntryCarriesConfig(t *testing.T) {
	cfg := NewConfig("a", "b")
	e := ConfigEntry(cfg, ProposalID{})
	if e.Kind != KindConfig || e.Config == nil || !e.Config.Equal(cfg) {
		t.Fatalf("ConfigEntry = %+v", e)
	}
	// Mutating the source must not affect the entry.
	cfg.Members[0] = "z"
	if e.Config.Members[0] != "a" {
		t.Fatal("ConfigEntry aliases the config")
	}
}
