// Package udpnet is a UDP transport for the consensus runtime — the
// paper's implementation also used UDP sockets. Envelopes are encoded with
// the types wire codec, one datagram per message; loss, duplication and
// reordering are inherent and the protocols tolerate all three. An optional
// loss injector reproduces the paper's tc-based experiments on real
// deployments.
package udpnet

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"

	"github.com/hraft-io/hraft/internal/runtime"
	"github.com/hraft-io/hraft/internal/types"
)

// MaxDatagram bounds the encoded envelope size. Batches and catch-up
// AppendEntries can be large; 60 KiB stays within a UDP datagram.
const MaxDatagram = 60 * 1024

// ErrTooLarge reports an envelope exceeding MaxDatagram.
var ErrTooLarge = errors.New("udpnet: message exceeds datagram size")

// encBufs recycles encode scratch buffers across Send calls so the steady
// state allocates neither the buffer nor the datagram copy.
var encBufs = sync.Pool{
	New: func() any { b := make([]byte, 0, 4096); return &b },
}

// Transport is a runtime.Transport over a UDP socket.
type Transport struct {
	id   types.NodeID
	conn *net.UDPConn

	mu     sync.Mutex
	peers  map[types.NodeID]*net.UDPAddr
	h      func(types.Envelope)
	closed bool

	lossMu sync.Mutex
	rng    *rand.Rand
	loss   float64
}

// Listen opens a UDP transport for node id on addr (e.g. "127.0.0.1:7001").
func Listen(id types.NodeID, addr string) (*Transport, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("udpnet: resolve %s: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("udpnet: listen %s: %w", addr, err)
	}
	t := &Transport{
		id:    id,
		conn:  conn,
		peers: make(map[types.NodeID]*net.UDPAddr),
		rng:   rand.New(rand.NewSource(int64(len(id)) + 1)),
	}
	go t.readLoop()
	return t, nil
}

// LocalAddr returns the bound address.
func (t *Transport) LocalAddr() string { return t.conn.LocalAddr().String() }

// AddPeer registers the UDP address of a peer node (or a C-Raft cluster
// endpoint).
func (t *Transport) AddPeer(id types.NodeID, addr string) error {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("udpnet: resolve peer %s=%s: %w", id, addr, err)
	}
	t.mu.Lock()
	t.peers[id] = ua
	t.mu.Unlock()
	return nil
}

// SetLoss injects independent per-message send loss (0 disables), matching
// the paper's tc experiments.
func (t *Transport) SetLoss(p float64) {
	t.lossMu.Lock()
	t.loss = p
	t.lossMu.Unlock()
}

// Send implements runtime.Transport. Ownership of the envelope's pooled
// parts (entry slices) transfers to the transport: they are recycled once
// the datagram is encoded, so callers must not retain or re-send them.
func (t *Transport) Send(env types.Envelope) error {
	t.lossMu.Lock()
	drop := t.loss > 0 && t.rng.Float64() < t.loss
	t.lossMu.Unlock()
	if drop {
		return nil
	}
	t.mu.Lock()
	addr, ok := t.peers[env.To]
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return runtime.ErrClosed
	}
	if !ok {
		return nil // unknown peer: drop, like a lost datagram
	}
	bp := encBufs.Get().(*[]byte)
	buf, err := types.AppendEnvelope((*bp)[:0], env)
	if err != nil {
		encBufs.Put(bp)
		return fmt.Errorf("udpnet: encode: %w", err)
	}
	*bp = buf[:0]
	if len(buf) > MaxDatagram {
		encBufs.Put(bp)
		return ErrTooLarge
	}
	// The envelope is on the wire; this transport serializes, so it is the
	// last owner and returns the pooled message parts.
	types.RecycleEnvelope(env)
	_, werr := t.conn.WriteToUDP(buf, addr)
	encBufs.Put(bp)
	if werr != nil {
		// Transient send errors are message loss.
		return nil
	}
	return nil
}

// SetHandler implements runtime.Transport. The handler must not retain
// the envelope's entry slices past its return: the transport recycles
// them (entry Data payloads stay valid — only the slices are reused).
func (t *Transport) SetHandler(h func(types.Envelope)) {
	t.mu.Lock()
	t.h = h
	t.mu.Unlock()
}

// Close implements runtime.Transport.
func (t *Transport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.h = nil
	t.mu.Unlock()
	return t.conn.Close()
}

func (t *Transport) readLoop() {
	buf := make([]byte, MaxDatagram+1)
	for {
		n, _, err := t.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		env, derr := types.DecodeEnvelope(buf[:n])
		if derr != nil {
			continue // corrupt datagram: drop
		}
		t.mu.Lock()
		h := t.h
		t.mu.Unlock()
		if h != nil {
			h(env)
		}
		// The handler has returned and the cores copy entries out of the
		// message before installing them; the decode-side pooled slices
		// can go back.
		types.RecycleEnvelope(env)
	}
}

var _ runtime.Transport = (*Transport)(nil)
