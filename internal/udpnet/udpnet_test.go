package udpnet

import (
	"sync/atomic"
	"testing"
	"time"

	"github.com/hraft-io/hraft/internal/types"
)

func pair(t *testing.T) (*Transport, *Transport) {
	t.Helper()
	a, err := Listen("a", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Listen("b", "127.0.0.1:0")
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	if err := a.AddPeer("b", b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPeer("a", a.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		a.Close()
		b.Close()
	})
	return a, b
}

func TestUDPRoundTrip(t *testing.T) {
	a, b := pair(t)
	got := make(chan types.Envelope, 1)
	// The transport recycles entry slices after the handler returns, so a
	// handler that hands the envelope to another goroutine must clone them
	// (the runtime's synchronous handler does not need to).
	b.SetHandler(func(env types.Envelope) {
		if ae, ok := env.Msg.(types.AppendEntries); ok {
			ae.Entries = types.CloneEntries(ae.Entries)
			env.Msg = ae
		}
		got <- env
	})
	// Send consumes the envelope's entry slices; build a fresh one per
	// attempt. UDP may drop; retry a few times like the protocols do.
	for i := 0; i < 10; i++ {
		want := types.Envelope{
			From: "a", To: "b", Layer: types.LayerLocal,
			Msg: types.AppendEntries{
				Term: 3, LeaderID: "a", LeaderCommit: 7, Round: 9,
				Entries: []types.Entry{{
					Index: 1, Term: 3, Kind: types.KindNormal,
					Approval: types.ApprovedLeader,
					PID:      types.ProposalID{Proposer: "a", Seq: 1},
					Data:     []byte("over-the-wire"),
				}},
			},
		}
		if err := a.Send(want); err != nil {
			t.Fatal(err)
		}
		select {
		case env := <-got:
			ae, ok := env.Msg.(types.AppendEntries)
			if !ok {
				t.Fatalf("got %T", env.Msg)
			}
			if env.From != "a" || env.To != "b" || ae.Term != 3 ||
				len(ae.Entries) != 1 || string(ae.Entries[0].Data) != "over-the-wire" {
				t.Fatalf("mismatch: %+v", env)
			}
			return
		case <-time.After(200 * time.Millisecond):
		}
	}
	t.Fatal("datagram never arrived after retries")
}

func TestUDPUnknownPeerDropsSilently(t *testing.T) {
	a, _ := pair(t)
	err := a.Send(types.Envelope{From: "a", To: "nobody", Layer: types.LayerLocal,
		Msg: types.JoinRequest{Site: "a"}})
	if err != nil {
		t.Fatalf("unknown peer should drop like loss, got %v", err)
	}
}

func TestUDPLossInjection(t *testing.T) {
	a, b := pair(t)
	var n atomic.Int64
	b.SetHandler(func(types.Envelope) { n.Add(1) })
	a.SetLoss(1.0) // drop everything
	for i := 0; i < 50; i++ {
		_ = a.Send(types.Envelope{From: "a", To: "b", Layer: types.LayerLocal,
			Msg: types.JoinRequest{Site: "a"}})
	}
	time.Sleep(100 * time.Millisecond)
	if n.Load() != 0 {
		t.Fatalf("messages delivered despite 100%% loss: %d", n.Load())
	}
	a.SetLoss(0)
	for i := 0; i < 10 && n.Load() == 0; i++ {
		_ = a.Send(types.Envelope{From: "a", To: "b", Layer: types.LayerLocal,
			Msg: types.JoinRequest{Site: "a"}})
		time.Sleep(50 * time.Millisecond)
	}
	if n.Load() == 0 {
		t.Fatal("no delivery after loss cleared")
	}
}

func TestUDPOversizeRejected(t *testing.T) {
	a, _ := pair(t)
	big := make([]byte, MaxDatagram+1)
	err := a.Send(types.Envelope{From: "a", To: "b", Layer: types.LayerLocal,
		Msg: types.ProposeEntry{Index: 1, Entry: types.Entry{Kind: types.KindNormal, Data: big}}})
	if err == nil {
		t.Fatal("oversize datagram accepted")
	}
}

func TestUDPCloseStopsDelivery(t *testing.T) {
	a, b := pair(t)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	// Sends to a closed peer just vanish (UDP semantics).
	if err := a.Send(types.Envelope{From: "a", To: "b", Layer: types.LayerLocal,
		Msg: types.JoinRequest{Site: "a"}}); err != nil {
		t.Fatalf("send after peer close: %v", err)
	}
}
