package hraft

import (
	"expvar"
	"fmt"
	"math"
	"net"
	"net/http"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/hraft-io/hraft/internal/audit"
)

// publishMu serializes the check-then-publish pair below; expvar itself
// panics on duplicate names, which is exactly what the error return is
// promising to prevent.
var publishMu sync.Mutex

// MetricSource is anything exposing a monotonic counter snapshot:
// Node, RaftNode and CRaftNode all qualify.
type MetricSource interface {
	// Metrics returns the current counter values by name.
	Metrics() map[string]uint64
}

// PublishExpvar registers src's counters under name in the process-wide
// expvar registry, so the standard /debug/vars endpoint (and anything that
// scrapes it) sees live consensus metrics: snapshot chunks sent and
// re-sent, appends throttled by flow control, pending-install rounds,
// queued proposals, and so on. The snapshot is taken on every read.
//
// expvar names are process-global; publishing a taken name returns an
// error instead of panicking (expvar.Publish would panic), so embedding
// applications can pick per-node names like "hraft.n1".
func PublishExpvar(name string, src MetricSource) error {
	publishMu.Lock()
	defer publishMu.Unlock()
	if expvar.Get(name) != nil {
		return fmt.Errorf("hraft: expvar name %q already published", name)
	}
	expvar.Publish(name, expvar.Func(func() any {
		return src.Metrics()
	}))
	return nil
}

// PeerStatusSource is optionally implemented by metric sources that also
// expose per-peer replication progress (Node, RaftNode and CRaftNode all
// do); MetricsHandler then renders peer-labeled gauges alongside the
// counters.
type PeerStatusSource interface {
	// PeerStatus snapshots the replication progress of every tracked peer
	// (empty unless the node currently leads).
	PeerStatus() []PeerStatus
}

// metricFamily accumulates one exposition family: its TYPE, HELP and
// sample lines, emitted together under a single header.
type metricFamily struct {
	typ   string
	help  string
	lines []string
}

// MetricsHandler returns an http.Handler rendering src's metrics in the
// Prometheus text exposition format. Every metric is prefixed "hraft_",
// labeled with the node name, and preceded by # HELP / # TYPE metadata;
// histogram keys emitted by the cores ("<base>.le.<bound>", "<base>.count",
// "<base>.sum_us") become proper _bucket{le=...}/_count/_sum series with le
// and the sum both in seconds (the unit Prometheus tooling like
// histogram_quantile expects) and buckets in ascending le order, counters
// and gauges plain samples. The online safety auditor's
// "audit.violations.<invariant>" counters collapse into one
// invariant-labeled hraft_audit_violations family (alert on it being
// nonzero). When src also implements PeerStatusSource, per-peer
// replication gauges (hraft_peer_*{node,peer}) ride along, and every
// scrape includes process-level context: hraft_build_info, uptime,
// goroutine count and heap gauges. Keys are sanitized (non-alphanumerics
// to underscores) and families emitted in sorted order so scrapes are
// diff-stable.
func MetricsHandler(node string, src MetricSource) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fams := make(map[string]*metricFamily)
		family := func(name, typ, help string) *metricFamily {
			f, ok := fams[name]
			if !ok {
				f = &metricFamily{typ: typ, help: help}
				fams[name] = f
			}
			return f
		}
		type bucket struct {
			le   float64
			line string
		}
		buckets := make(map[string][]bucket)
		m := src.Metrics()
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			v := m[k]
			switch {
			case strings.Contains(k, ".le."):
				base, bound, _ := strings.Cut(k, ".le.")
				name := "hraft_" + sanitizeMetric(base) + "_seconds"
				le, leNum := "+Inf", math.Inf(1)
				if bound != "inf" {
					// Bounds are Go duration strings ("5ms", "2.5s");
					// Prometheus requires le to parse as a float, in seconds.
					d, err := time.ParseDuration(bound)
					if err != nil {
						continue // unrenderable bucket; drop rather than lie
					}
					leNum = d.Seconds()
					le = strconv.FormatFloat(leNum, 'g', -1, 64)
				}
				family(name, "histogram", histogramHelp(base))
				buckets[name] = append(buckets[name], bucket{le: leNum, line: fmt.Sprintf(
					"%s_bucket{node=%q,le=%q} %d", name, node, le, v)})
			case strings.HasSuffix(k, ".count"):
				base := strings.TrimSuffix(k, ".count")
				name := "hraft_" + sanitizeMetric(base) + "_seconds"
				f := family(name, "histogram", histogramHelp(base))
				f.lines = append(f.lines, fmt.Sprintf("%s_count{node=%q} %d", name, node, v))
			case strings.HasSuffix(k, ".sum_us"):
				base := strings.TrimSuffix(k, ".sum_us")
				name := "hraft_" + sanitizeMetric(base) + "_seconds"
				f := family(name, "histogram", histogramHelp(base))
				f.lines = append(f.lines, fmt.Sprintf("%s_sum{node=%q} %s", name, node,
					strconv.FormatFloat(float64(v)/1e6, 'g', -1, 64)))
			case strings.HasPrefix(k, audit.MetricPrefix):
				// The online safety auditor's per-invariant violation
				// counters become one labeled family, so a single alert rule
				// (hraft_audit_violations > 0) covers every invariant.
				f := family("hraft_audit_violations", "counter",
					"Consensus-invariant violations detected by the online safety auditor.")
				f.lines = append(f.lines, fmt.Sprintf(
					"hraft_audit_violations{node=%q,invariant=%q} %d",
					node, strings.TrimPrefix(k, audit.MetricPrefix), v))
			case strings.Contains(k, "gauge."):
				// "gauge." prefixed keys (possibly under a C-Raft "local."/
				// "global." section) are point-in-time values.
				name := "hraft_" + sanitizeMetric(k)
				f := family(name, "gauge", "Point-in-time value of "+k+".")
				f.lines = append(f.lines, fmt.Sprintf("%s{node=%q} %d", name, node, v))
			default:
				name := "hraft_" + sanitizeMetric(k)
				f := family(name, "counter", "Monotonic count of "+k+" events.")
				f.lines = append(f.lines, fmt.Sprintf("%s{node=%q} %d", name, node, v))
			}
		}
		// Histogram buckets must appear in ascending le order regardless of
		// how their flat keys sort lexically ("10ms" < "5ms").
		for name, bs := range buckets {
			sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
			f := fams[name]
			lines := make([]string, 0, len(bs)+len(f.lines))
			for _, b := range bs {
				lines = append(lines, b.line)
			}
			f.lines = append(lines, f.lines...)
		}
		if ps, ok := src.(PeerStatusSource); ok {
			appendPeerFamilies(fams, node, ps.PeerStatus())
		}
		appendRuntimeFamilies(fams, node)
		names := make([]string, 0, len(fams))
		for name := range fams {
			names = append(names, name)
		}
		sort.Strings(names)
		var b strings.Builder
		for _, name := range names {
			f := fams[name]
			fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, f.help, name, f.typ)
			for _, line := range f.lines {
				b.WriteString(line)
				b.WriteByte('\n')
			}
		}
		_, _ = w.Write([]byte(b.String()))
	})
}

// histogramHelp describes a latency histogram family.
func histogramHelp(base string) string {
	return "Latency histogram " + base + " (seconds)."
}

// appendPeerFamilies renders the leader's per-peer replication progress as
// peer-labeled gauges: progress state, match/next indices, srtt/rttvar and
// inflight window occupancy.
func appendPeerFamilies(fams map[string]*metricFamily, node string, peers []PeerStatus) {
	if len(peers) == 0 {
		return
	}
	add := func(name, help string, line string) {
		f, ok := fams[name]
		if !ok {
			f = &metricFamily{typ: "gauge", help: help}
			fams[name] = f
		}
		f.lines = append(f.lines, line)
	}
	for _, p := range peers {
		add("hraft_peer_match_index", "Highest log index known replicated on the peer.",
			fmt.Sprintf("hraft_peer_match_index{node=%q,peer=%q} %d", node, p.ID, p.Match))
		add("hraft_peer_next_index", "Next log index to send to the peer.",
			fmt.Sprintf("hraft_peer_next_index{node=%q,peer=%q} %d", node, p.ID, p.Next))
		add("hraft_peer_srtt_seconds", "Smoothed acknowledgment round-trip estimate for the peer.",
			fmt.Sprintf("hraft_peer_srtt_seconds{node=%q,peer=%q} %s", node, p.ID,
				strconv.FormatFloat(p.SRTT.Seconds(), 'g', -1, 64)))
		add("hraft_peer_rttvar_seconds", "Round-trip variance estimate for the peer.",
			fmt.Sprintf("hraft_peer_rttvar_seconds{node=%q,peer=%q} %s", node, p.ID,
				strconv.FormatFloat(p.RTTVar.Seconds(), 'g', -1, 64)))
		add("hraft_peer_inflight_bytes", "Encoded entry bytes outstanding to the peer.",
			fmt.Sprintf("hraft_peer_inflight_bytes{node=%q,peer=%q} %d", node, p.ID, p.InflightBytes))
		add("hraft_peer_inflight_msgs", "Append messages outstanding to the peer.",
			fmt.Sprintf("hraft_peer_inflight_msgs{node=%q,peer=%q} %d", node, p.ID, p.InflightMsgs))
		add("hraft_peer_state", "Replication state of the peer (1 = the labeled state).",
			fmt.Sprintf("hraft_peer_state{node=%q,peer=%q,state=%q} 1", node, p.ID, p.State))
	}
}

// processStart anchors hraft_process_uptime_seconds.
var processStart = time.Now()

// moduleVersion is the hraft module version baked into the binary
// ("(devel)" for source builds, "unknown" without build info).
var moduleVersion = func() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		return bi.Main.Version
	}
	return "unknown"
}()

// appendRuntimeFamilies adds the process-level context every consensus
// dashboard ends up needing next to the protocol counters: what build is
// running, for how long, and whether the process itself (goroutines,
// heap) — rather than the protocol — is the thing misbehaving.
func appendRuntimeFamilies(fams map[string]*metricFamily, node string) {
	add := func(name, typ, help, line string) {
		f, ok := fams[name]
		if !ok {
			f = &metricFamily{typ: typ, help: help}
			fams[name] = f
		}
		f.lines = append(f.lines, line)
	}
	add("hraft_build_info", "gauge",
		"Build metadata; the value is always 1.",
		fmt.Sprintf("hraft_build_info{node=%q,go_version=%q,version=%q} 1",
			node, runtime.Version(), moduleVersion))
	add("hraft_process_uptime_seconds", "gauge",
		"Seconds since this process's metrics surface was initialized.",
		fmt.Sprintf("hraft_process_uptime_seconds{node=%q} %s", node,
			strconv.FormatFloat(time.Since(processStart).Seconds(), 'g', -1, 64)))
	add("hraft_goroutines", "gauge",
		"Live goroutines in the process.",
		fmt.Sprintf("hraft_goroutines{node=%q} %d", node, runtime.NumGoroutine()))
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	add("hraft_heap_alloc_bytes", "gauge",
		"Bytes of allocated, still-reachable heap objects.",
		fmt.Sprintf("hraft_heap_alloc_bytes{node=%q} %d", node, ms.HeapAlloc))
	add("hraft_heap_sys_bytes", "gauge",
		"Heap bytes obtained from the OS.",
		fmt.Sprintf("hraft_heap_sys_bytes{node=%q} %d", node, ms.HeapSys))
	add("hraft_heap_objects", "gauge",
		"Live heap objects.",
		fmt.Sprintf("hraft_heap_objects{node=%q} %d", node, ms.HeapObjects))
	add("hraft_gc_cycles_total", "counter",
		"Completed garbage-collection cycles.",
		fmt.Sprintf("hraft_gc_cycles_total{node=%q} %d", node, ms.NumGC))
}

// sanitizeMetric maps a counter key onto the Prometheus metric-name
// alphabet.
func sanitizeMetric(k string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		default:
			return '_'
		}
	}, k)
}

// ServeMetrics serves src's metrics at http://addr/metrics in the
// Prometheus text format (see MetricsHandler) on a background goroutine.
// It returns the bound listener address (useful with a ":0" addr) and a
// shutdown func. The endpoint snapshots metrics per scrape; it holds the
// node's event loop only as long as one Metrics() call.
func ServeMetrics(addr, node string, src MetricSource) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("hraft: metrics listen: %w", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(node, src))
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}
