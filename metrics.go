package hraft

import (
	"expvar"
	"fmt"
	"sync"
)

// publishMu serializes the check-then-publish pair below; expvar itself
// panics on duplicate names, which is exactly what the error return is
// promising to prevent.
var publishMu sync.Mutex

// MetricSource is anything exposing a monotonic counter snapshot:
// Node, RaftNode and CRaftNode all qualify.
type MetricSource interface {
	// Metrics returns the current counter values by name.
	Metrics() map[string]uint64
}

// PublishExpvar registers src's counters under name in the process-wide
// expvar registry, so the standard /debug/vars endpoint (and anything that
// scrapes it) sees live consensus metrics: snapshot chunks sent and
// re-sent, appends throttled by flow control, pending-install rounds,
// queued proposals, and so on. The snapshot is taken on every read.
//
// expvar names are process-global; publishing a taken name returns an
// error instead of panicking (expvar.Publish would panic), so embedding
// applications can pick per-node names like "hraft.n1".
func PublishExpvar(name string, src MetricSource) error {
	publishMu.Lock()
	defer publishMu.Unlock()
	if expvar.Get(name) != nil {
		return fmt.Errorf("hraft: expvar name %q already published", name)
	}
	expvar.Publish(name, expvar.Func(func() any {
		return src.Metrics()
	}))
	return nil
}
