package hraft

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// publishMu serializes the check-then-publish pair below; expvar itself
// panics on duplicate names, which is exactly what the error return is
// promising to prevent.
var publishMu sync.Mutex

// MetricSource is anything exposing a monotonic counter snapshot:
// Node, RaftNode and CRaftNode all qualify.
type MetricSource interface {
	// Metrics returns the current counter values by name.
	Metrics() map[string]uint64
}

// PublishExpvar registers src's counters under name in the process-wide
// expvar registry, so the standard /debug/vars endpoint (and anything that
// scrapes it) sees live consensus metrics: snapshot chunks sent and
// re-sent, appends throttled by flow control, pending-install rounds,
// queued proposals, and so on. The snapshot is taken on every read.
//
// expvar names are process-global; publishing a taken name returns an
// error instead of panicking (expvar.Publish would panic), so embedding
// applications can pick per-node names like "hraft.n1".
func PublishExpvar(name string, src MetricSource) error {
	publishMu.Lock()
	defer publishMu.Unlock()
	if expvar.Get(name) != nil {
		return fmt.Errorf("hraft: expvar name %q already published", name)
	}
	expvar.Publish(name, expvar.Func(func() any {
		return src.Metrics()
	}))
	return nil
}

// MetricsHandler returns an http.Handler rendering src's metrics in the
// Prometheus text exposition format. Every metric is prefixed "hraft_" and
// labeled with the node name; histogram keys emitted by the cores
// ("<base>.le.<bound>", "<base>.count", "<base>.sum_us") become proper
// _bucket{le=...}/_count/_sum series with le and the sum both in seconds
// (the unit Prometheus tooling like histogram_quantile expects), counters
// and gauges plain samples. Keys are sanitized (non-alphanumerics to
// underscores) and emitted in sorted order so scrapes are diff-stable.
func MetricsHandler(node string, src MetricSource) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		m := src.Metrics()
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var b strings.Builder
		for _, k := range keys {
			v := m[k]
			switch {
			case strings.Contains(k, ".le."):
				base, bound, _ := strings.Cut(k, ".le.")
				le := "+Inf"
				if bound != "inf" {
					// Bounds are Go duration strings ("5ms", "2.5s");
					// Prometheus requires le to parse as a float, in seconds.
					d, err := time.ParseDuration(bound)
					if err != nil {
						continue // unrenderable bucket; drop rather than lie
					}
					le = strconv.FormatFloat(d.Seconds(), 'g', -1, 64)
				}
				fmt.Fprintf(&b, "hraft_%s_seconds_bucket{node=%q,le=%q} %d\n",
					sanitizeMetric(base), node, le, v)
			case strings.HasSuffix(k, ".count"):
				fmt.Fprintf(&b, "hraft_%s_seconds_count{node=%q} %d\n",
					sanitizeMetric(strings.TrimSuffix(k, ".count")), node, v)
			case strings.HasSuffix(k, ".sum_us"):
				fmt.Fprintf(&b, "hraft_%s_seconds_sum{node=%q} %s\n",
					sanitizeMetric(strings.TrimSuffix(k, ".sum_us")), node,
					strconv.FormatFloat(float64(v)/1e6, 'g', -1, 64))
			default:
				fmt.Fprintf(&b, "hraft_%s{node=%q} %d\n", sanitizeMetric(k), node, v)
			}
		}
		_, _ = w.Write([]byte(b.String()))
	})
}

// sanitizeMetric maps a counter key onto the Prometheus metric-name
// alphabet.
func sanitizeMetric(k string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		default:
			return '_'
		}
	}, k)
}

// ServeMetrics serves src's metrics at http://addr/metrics in the
// Prometheus text format (see MetricsHandler) on a background goroutine.
// It returns the bound listener address (useful with a ":0" addr) and a
// shutdown func. The endpoint snapshots metrics per scrape; it holds the
// node's event loop only as long as one Metrics() call.
func ServeMetrics(addr, node string, src MetricSource) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("hraft: metrics listen: %w", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(node, src))
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}
