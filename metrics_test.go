package hraft

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

type staticMetrics map[string]uint64

func (m staticMetrics) Metrics() map[string]uint64 { return m }

// TestMetricsHandlerPrometheusFormat pins the exposition format: histogram
// buckets carry numeric le values in seconds (what histogram_quantile
// needs), the sum is converted to seconds, and plain counters/gauges pass
// through sanitized.
func TestMetricsHandlerPrometheusFormat(t *testing.T) {
	src := staticMetrics{
		"hist.commit_latency.le.5ms":   3,
		"hist.commit_latency.le.2.5s":  7,
		"hist.commit_latency.le.inf":   9,
		"hist.commit_latency.count":    9,
		"hist.commit_latency.sum_us":   1500000,
		"replica.snapshot_chunks_sent": 12,
		"gauge.log_span":               42,
	}
	rec := httptest.NewRecorder()
	MetricsHandler("n1", src).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		`hraft_hist_commit_latency_seconds_bucket{node="n1",le="0.005"} 3`,
		`hraft_hist_commit_latency_seconds_bucket{node="n1",le="2.5"} 7`,
		`hraft_hist_commit_latency_seconds_bucket{node="n1",le="+Inf"} 9`,
		`hraft_hist_commit_latency_seconds_count{node="n1"} 9`,
		`hraft_hist_commit_latency_seconds_sum{node="n1"} 1.5`,
		`hraft_replica_snapshot_chunks_sent{node="n1"} 12`,
		`hraft_gauge_log_span{node="n1"} 42`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
}
