package hraft

import (
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"
)

type staticMetrics map[string]uint64

func (m staticMetrics) Metrics() map[string]uint64 { return m }

// staticPeers is a metric source that also exposes peer progress.
type staticPeers struct {
	staticMetrics
	peers []PeerStatus
}

func (s staticPeers) PeerStatus() []PeerStatus { return s.peers }

// TestMetricsHandlerPrometheusFormat pins the exposition format: histogram
// buckets carry numeric le values in seconds (what histogram_quantile
// needs), the sum is converted to seconds, and plain counters/gauges pass
// through sanitized.
func TestMetricsHandlerPrometheusFormat(t *testing.T) {
	src := staticMetrics{
		"hist.commit_latency.le.5ms":   3,
		"hist.commit_latency.le.2.5s":  7,
		"hist.commit_latency.le.inf":   9,
		"hist.commit_latency.count":    9,
		"hist.commit_latency.sum_us":   1500000,
		"replica.snapshot_chunks_sent": 12,
		"gauge.log_span":               42,
	}
	rec := httptest.NewRecorder()
	MetricsHandler("n1", src).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		`hraft_hist_commit_latency_seconds_bucket{node="n1",le="0.005"} 3`,
		`hraft_hist_commit_latency_seconds_bucket{node="n1",le="2.5"} 7`,
		`hraft_hist_commit_latency_seconds_bucket{node="n1",le="+Inf"} 9`,
		`hraft_hist_commit_latency_seconds_count{node="n1"} 9`,
		`hraft_hist_commit_latency_seconds_sum{node="n1"} 1.5`,
		`hraft_replica_snapshot_chunks_sent{node="n1"} 12`,
		`hraft_gauge_log_span{node="n1"} 42`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
}

// TestMetricsHandlerMetadata pins the scrape metadata: every family gets
// exactly one # HELP and one # TYPE line, histograms are typed histogram
// with their buckets in ascending le order, gauge.* keys are typed gauge,
// and everything else counter.
func TestMetricsHandlerMetadata(t *testing.T) {
	src := staticMetrics{
		"hist.commit_latency.le.5ms":   3,
		"hist.commit_latency.le.10ms":  5,
		"hist.commit_latency.le.inf":   9,
		"hist.commit_latency.count":    9,
		"hist.commit_latency.sum_us":   1500000,
		"replica.snapshot_chunks_sent": 12,
		"gauge.log_span":               42,
		"local.gauge.sessions_open":    2,
	}
	rec := httptest.NewRecorder()
	MetricsHandler("n1", src).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"# HELP hraft_hist_commit_latency_seconds ",
		"# TYPE hraft_hist_commit_latency_seconds histogram",
		"# TYPE hraft_replica_snapshot_chunks_sent counter",
		"# TYPE hraft_gauge_log_span gauge",
		"# TYPE hraft_local_gauge_sessions_open gauge",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}
	for _, dup := range []string{"# TYPE hraft_hist_commit_latency_seconds histogram"} {
		if strings.Count(body, dup) != 1 {
			t.Fatalf("metadata line %q emitted %d times:\n%s", dup, strings.Count(body, dup), body)
		}
	}
	// Buckets ascend numerically: 5ms before 10ms despite lexical order.
	i5 := strings.Index(body, `le="0.005"`)
	i10 := strings.Index(body, `le="0.01"`)
	iInf := strings.Index(body, `le="+Inf"`)
	if i5 < 0 || i10 < 0 || iInf < 0 || !(i5 < i10 && i10 < iInf) {
		t.Fatalf("buckets out of ascending le order (5ms@%d 10ms@%d inf@%d):\n%s", i5, i10, iInf, body)
	}
	// Every sample line belongs to a family whose metadata precedes it.
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		name := line
		if i := strings.IndexAny(name, "{ "); i >= 0 {
			name = name[:i]
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_count"), "_sum")
		typeLine := "# TYPE " + base + " "
		ti := strings.Index(body, typeLine)
		li := strings.Index(body, line)
		if ti < 0 || ti > li {
			t.Fatalf("sample %q not preceded by its TYPE metadata", line)
		}
	}
}

// TestMetricsHandlerAuditFamily pins the auditor exposition: the flat
// "audit.violations.<invariant>" counters collapse into one
// invariant-labeled family with a single metadata block, so one alert
// rule covers every invariant.
func TestMetricsHandlerAuditFamily(t *testing.T) {
	src := staticMetrics{
		"audit.violations.election-safety":  2,
		"audit.violations.committed-prefix": 1,
	}
	rec := httptest.NewRecorder()
	MetricsHandler("n1", src).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE hraft_audit_violations counter",
		`hraft_audit_violations{node="n1",invariant="election-safety"} 2`,
		`hraft_audit_violations{node="n1",invariant="committed-prefix"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}
	if n := strings.Count(body, "# TYPE hraft_audit_violations counter"); n != 1 {
		t.Fatalf("audit family metadata emitted %d times:\n%s", n, body)
	}
	// The flat keys must not also render as per-invariant families.
	if strings.Contains(body, "hraft_audit_violations_election_safety") {
		t.Fatalf("audit key leaked as an unlabeled family:\n%s", body)
	}
}

// TestMetricsHandlerRuntimeFamilies pins the process-level context every
// scrape carries: build info (value fixed at 1), uptime, goroutine count
// and heap gauges.
func TestMetricsHandlerRuntimeFamilies(t *testing.T) {
	rec := httptest.NewRecorder()
	MetricsHandler("n1", staticMetrics{}).ServeHTTP(rec,
		httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE hraft_build_info gauge",
		`hraft_build_info{node="n1",go_version="` + runtime.Version() + `"`,
		"# TYPE hraft_process_uptime_seconds gauge",
		`hraft_process_uptime_seconds{node="n1"} `,
		"# TYPE hraft_goroutines gauge",
		`hraft_goroutines{node="n1"} `,
		"# TYPE hraft_heap_alloc_bytes gauge",
		`hraft_heap_alloc_bytes{node="n1"} `,
		"# TYPE hraft_heap_objects gauge",
		"# TYPE hraft_gc_cycles_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}
	if !strings.Contains(body, `"} 1`) || !strings.Contains(body, "hraft_build_info{") {
		t.Fatalf("build info sample malformed:\n%s", body)
	}
}

// TestMetricsHandlerPeerStatus pins the per-peer introspection gauges: a
// source that exposes PeerStatus gets peer-labeled match/next/srtt/state
// series with their own metadata.
func TestMetricsHandlerPeerStatus(t *testing.T) {
	src := staticPeers{
		staticMetrics: staticMetrics{"replica.snapshot_chunks_sent": 1},
		peers: []PeerStatus{
			{ID: "n2", State: "replicate", Match: 10, Next: 12,
				SRTT: 5 * time.Millisecond, RTTVar: time.Millisecond,
				InflightBytes: 2048, InflightMsgs: 2},
			{ID: "n3", State: "snapshot", Match: 3, Next: 4},
		},
	}
	rec := httptest.NewRecorder()
	MetricsHandler("n1", src).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE hraft_peer_match_index gauge",
		`hraft_peer_match_index{node="n1",peer="n2"} 10`,
		`hraft_peer_next_index{node="n1",peer="n2"} 12`,
		`hraft_peer_srtt_seconds{node="n1",peer="n2"} 0.005`,
		`hraft_peer_rttvar_seconds{node="n1",peer="n2"} 0.001`,
		`hraft_peer_inflight_bytes{node="n1",peer="n2"} 2048`,
		`hraft_peer_inflight_msgs{node="n1",peer="n2"} 2`,
		`hraft_peer_state{node="n1",peer="n2",state="replicate"} 1`,
		`hraft_peer_state{node="n1",peer="n3",state="snapshot"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}
}
