package hraft

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"github.com/hraft-io/hraft/internal/audit"
	"github.com/hraft-io/hraft/internal/core/fastraft"
	"github.com/hraft-io/hraft/internal/runtime"
	"github.com/hraft-io/hraft/internal/storage"
	"github.com/hraft-io/hraft/internal/trace"
	"github.com/hraft-io/hraft/internal/types"
)

// Options configures a Fast Raft node.
type Options struct {
	// ID is this site's identity (required).
	ID NodeID
	// Peers is the initial voting membership. Leave empty for a node that
	// joins an existing group via Join.
	Peers []NodeID
	// Transport connects the node to its peers (required).
	Transport Transport
	// Storage is the stable storage (default: in-memory).
	Storage Storage
	// HeartbeatInterval is the leader tick period (default 100 ms, the
	// paper's intra-cluster setting).
	HeartbeatInterval time.Duration
	// ElectionTimeoutMin/Max bound the randomized election timeout
	// (defaults derived from the heartbeat).
	ElectionTimeoutMin time.Duration
	// ElectionTimeoutMax must exceed ElectionTimeoutMin when set.
	ElectionTimeoutMax time.Duration
	// ProposalTimeout is the proposer's re-propose period.
	ProposalTimeout time.Duration
	// MemberTimeoutRounds is the silent-leave detection threshold in
	// missed heartbeat responses (default 5).
	MemberTimeoutRounds int
	// SnapshotThreshold enables log compaction: once this many entries
	// commit beyond the latest snapshot, the node snapshots the
	// application state (through Snapshotter) and discards the covered log
	// prefix from memory and stable storage. Lagging or restarted peers
	// catch up via snapshot transfer instead of full log replay. 0
	// disables compaction (the log grows forever).
	SnapshotThreshold int
	// Snapshotter is the application's state-machine snapshot hook,
	// required for meaningful compaction: Snapshot() serializes the state
	// (and reports the last applied index), Restore() replaces it — on
	// restart from a stored snapshot, and when the leader installs one.
	// With a nil Snapshotter, snapshots carry no application state;
	// enable compaction without one only if replaying every entry is not
	// needed to rebuild state.
	Snapshotter Snapshotter
	// MaxEntriesPerAppend caps the entries carried by one AppendEntries
	// message (0 = unlimited), so a lagging follower catches up over
	// several bounded round trips instead of receiving the entire retained
	// log suffix in one message. Set it when the transport has a datagram
	// size limit (UDP).
	MaxEntriesPerAppend int
	// MaxInflightAppends bounds outstanding AppendEntries messages per
	// follower once it is replicating (0 = a small default). Catch-up
	// pipelines up to this many messages per round trip; a full window
	// downgrades the round to a plain heartbeat instead of duplicating
	// in-flight entries on a slow peer. Secondary to MaxInflightBytes.
	MaxInflightAppends int
	// MaxInflightBytes bounds the encoded entry bytes outstanding per
	// follower (0 = 1 MiB): the primary append window. Entries are sized
	// at encode time, so flow control tracks actual wire cost — a follower
	// absorbing large entries is throttled as early as one absorbing many
	// small ones.
	MaxInflightBytes int
	// MaxSnapshotChunk, when set, streams snapshot transfers
	// (InstallSnapshot) in chunks of at most this many payload bytes
	// instead of one message carrying the whole image — required for
	// datagram transports once state machines outgrow a datagram. The
	// follower reassembles and installs on the final chunk; acknowledged
	// chunks are never re-sent. 0 ships the whole snapshot in one message.
	MaxSnapshotChunk int
	// MaxInflightProposals caps this node's unresolved proposals (0 =
	// unlimited). Excess proposals queue in FIFO order and are broadcast
	// as earlier ones resolve, keeping a proposer burst from spraying
	// sparse insertions across arbitrary log indices.
	MaxInflightProposals int
	// MaxInflightProposalBytes bounds the encoded payload bytes of this
	// node's broadcast-but-unresolved proposals (0 = unlimited): the
	// byte-based mirror of MaxInflightProposals, sized at encode time, so
	// a burst of large entries is throttled as early as a burst of many
	// small ones. The first proposal always broadcasts.
	MaxInflightProposalBytes int
	// SessionTTL expires client sessions (OpenSession) idle longer than
	// this, via leader-committed clock entries applied identically on every
	// replica. 0 disables expiry: sessions then live until the registry's
	// LRU cap evicts them.
	SessionTTL time.Duration
	// DisableFastTrack forces the classic track (for comparisons).
	DisableFastTrack bool
	// Seed drives randomized timeouts (0 = time-based).
	Seed int64
	// OnCommit, when set, observes every committed entry in order.
	OnCommit func(Entry)
	// CommitBuffer sizes the Commits channel (default 1024). The channel
	// must be consumed, or commit delivery stalls (consensus itself keeps
	// running).
	CommitBuffer int
	// ApplyQueueSize bounds the commit→apply pipeline between the
	// consensus goroutine and the callback dispatcher, in drained output
	// batches (0 = a 256-batch default). A full pipeline applies
	// backpressure to consensus instead of buffering unboundedly.
	ApplyQueueSize int
	// Trace, when set, enables the protocol flight recorder: typed events
	// (elections, per-peer appends, snapshot streams, reads, sessions) in
	// a fixed-size ring plus per-proposal stage latency histograms and
	// slow-op logging. Retrieve with Recorder, serve with ServeDebug. Nil
	// disables recording at negligible cost.
	Trace *TraceOptions
}

// ErrStopped is returned by operations on a stopped node.
var ErrStopped = errors.New("hraft: node stopped")

// mixSeed derives a node's timer seed from the user seed and the node ID,
// so that nodes given the same seed still draw distinct randomized
// timeouts (identical streams would keep dueling candidates in lockstep).
// A zero seed falls back to the wall clock.
func mixSeed(seed int64, id NodeID) int64 {
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	const prime = 1099511628211
	h := uint64(seed)
	for _, c := range []byte(id) {
		h ^= uint64(c)
		h *= prime
	}
	return int64(h)
}

// Node is a Fast Raft site running on real time.
type Node struct {
	host    *runtime.Host
	fr      *fastraft.Node
	aud     *audit.Auditor
	commits chan Entry
	proposalWaiters
	readWaiters
}

// NewNode builds and starts a Fast Raft node.
func NewNode(opts Options) (*Node, error) {
	if opts.ID == types.None {
		return nil, errors.New("hraft: Options.ID is required")
	}
	if opts.Transport == nil {
		return nil, errors.New("hraft: Options.Transport is required")
	}
	if opts.Storage == nil {
		opts.Storage = NewMemoryStorage()
	}
	seed := mixSeed(opts.Seed, opts.ID)
	rec, aud := newRecorder(opts.ID, opts.Trace)
	fr, err := fastraft.New(fastraft.Config{
		ID:                       opts.ID,
		Bootstrap:                types.NewConfig(opts.Peers...),
		Storage:                  opts.Storage,
		HeartbeatInterval:        opts.HeartbeatInterval,
		ElectionTimeoutMin:       opts.ElectionTimeoutMin,
		ElectionTimeoutMax:       opts.ElectionTimeoutMax,
		ProposalTimeout:          opts.ProposalTimeout,
		MemberTimeoutRounds:      opts.MemberTimeoutRounds,
		SnapshotThreshold:        opts.SnapshotThreshold,
		Snapshotter:              opts.Snapshotter,
		MaxEntriesPerAppend:      opts.MaxEntriesPerAppend,
		MaxInflightAppends:       opts.MaxInflightAppends,
		MaxInflightBytes:         opts.MaxInflightBytes,
		MaxSnapshotChunk:         opts.MaxSnapshotChunk,
		MaxInflightProposals:     opts.MaxInflightProposals,
		MaxInflightProposalBytes: opts.MaxInflightProposalBytes,
		SessionTTL:               opts.SessionTTL,
		DisableFastTrack:         opts.DisableFastTrack,
		Rand:                     rand.New(rand.NewSource(seed)),
		Recorder:                 rec,
	})
	if err != nil {
		return nil, fmt.Errorf("hraft: %w", err)
	}
	buf := opts.CommitBuffer
	if buf <= 0 {
		buf = 1024
	}
	n := &Node{
		fr:              fr,
		aud:             aud,
		commits:         make(chan Entry, buf),
		proposalWaiters: newProposalWaiters(),
		readWaiters:     newReadWaiters(),
	}
	n.host = runtime.NewHost(fr, opts.Transport, runtime.Callbacks{
		OnCommit: func(e Entry) {
			if opts.OnCommit != nil {
				opts.OnCommit(e)
			}
			n.commits <- e
		},
		OnResolve:      n.resolve,
		OnReadDone:     n.resolveRead,
		ApplyQueueSize: opts.ApplyQueueSize,
		Recorder:       rec,
	})
	wireDurability(n.host, opts.Storage, rec)
	return n, nil
}

// wireDurability connects group-commit storage to a host: fsync
// completions flow back through NotifyDurable so durability-gated machine
// outputs release, and (when tracing) each durable batch feeds the
// hist.fsync_batch_size histogram. A no-op for synchronous storage.
func wireDurability(host *runtime.Host, s Storage, rec *trace.Recorder) {
	g := storage.AsGrouped(s)
	if g == nil {
		return
	}
	g.OnDurable(host.NotifyDurable)
	if rec == nil {
		return
	}
	type fsyncObservable interface {
		SetFsyncObserver(func(records, bytes int, took time.Duration))
	}
	if fo, ok := s.(fsyncObservable); ok {
		start := time.Now()
		fo.SetFsyncObserver(func(records, bytes int, _ time.Duration) {
			rec.FsyncBatch(time.Since(start), records, bytes)
		})
	}
}

// ID returns the node's identity.
func (n *Node) ID() NodeID { return n.fr.ID() }

// Role returns the node's current role.
func (n *Node) Role() Role {
	var r Role
	n.host.Do(func(_ time.Duration, _ runtime.Machine) { r = n.fr.Role() })
	return r
}

// Leader returns the node's view of the current leader (empty if unknown).
func (n *Node) Leader() NodeID {
	var l NodeID
	n.host.Do(func(_ time.Duration, _ runtime.Machine) { l = n.fr.LeaderID() })
	return l
}

// Term returns the node's current term.
func (n *Node) Term() Term {
	var t Term
	n.host.Do(func(_ time.Duration, _ runtime.Machine) { t = n.fr.Term() })
	return t
}

// CommitIndex returns the node's commit index.
func (n *Node) CommitIndex() Index {
	var i Index
	n.host.Do(func(_ time.Duration, _ runtime.Machine) { i = n.fr.CommitIndex() })
	return i
}

// SnapshotIndex returns the node's log-compaction boundary: the last index
// covered by its snapshot (0 if the log has never been compacted).
func (n *Node) SnapshotIndex() Index {
	var i Index
	n.host.Do(func(_ time.Duration, _ runtime.Machine) { i = n.fr.SnapshotIndex() })
	return i
}

// FirstIndex returns the first retained log index (1 when nothing has been
// compacted).
func (n *Node) FirstIndex() Index {
	var i Index
	n.host.Do(func(_ time.Duration, _ runtime.Machine) { i = n.fr.FirstIndex() })
	return i
}

// Members returns the node's active voting configuration.
func (n *Node) Members() Membership {
	var m Membership
	n.host.Do(func(_ time.Duration, _ runtime.Machine) { m = n.fr.Config() })
	return m
}

// Commits streams committed entries in log order. The channel must be
// consumed.
func (n *Node) Commits() <-chan Entry { return n.commits }

// Metrics returns a snapshot of the node's monotonic replication counters
// (snapshot chunks sent/resent, appends throttled, pending-install rounds,
// proposals queued, ...). Publish them with PublishExpvar or scrape
// periodically; counters only ever increase.
func (n *Node) Metrics() map[string]uint64 {
	var m map[string]uint64
	n.host.Do(func(_ time.Duration, _ runtime.Machine) { m = n.fr.Metrics() })
	n.aud.MergeMetrics(m)
	return m
}

// ProposeAsync submits an entry without waiting; the proposal is re-sent
// until it commits (watch Commits or use Propose to await it).
func (n *Node) ProposeAsync(data []byte) ProposalID {
	var pid ProposalID
	n.host.Do(func(now time.Duration, _ runtime.Machine) {
		pid = n.fr.Propose(now, data)
	})
	return pid
}

// Propose submits an entry and waits for it to commit, returning its log
// index. Note that a retry after a lost acknowledgment can commit twice;
// use OpenSession/Session.Propose for exactly-once semantics.
func (n *Node) Propose(ctx context.Context, data []byte) (Index, error) {
	return n.await(ctx, n.host, func(now time.Duration) ProposalID {
		return n.fr.Propose(now, data)
	})
}

// Join starts the join protocol toward the given contacts: the node
// becomes a non-voting member, is caught up by the leader, and turns into
// a voting member once the configuration including it commits.
func (n *Node) Join(contacts []NodeID) {
	n.host.Do(func(now time.Duration, _ runtime.Machine) {
		n.fr.Join(now, contacts)
	})
}

// Leave announces that this node wants to leave the configuration.
func (n *Node) Leave() {
	n.host.Do(func(now time.Duration, _ runtime.Machine) {
		n.fr.Leave(now)
	})
}

// Stop halts the node (equivalent to a crash: peers detect the silence).
// Its storage remains usable for a restart.
func (n *Node) Stop() {
	n.markStopped()
	n.markReadsStopped()
	n.host.Stop()
}
