package hraft

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/hraft-io/hraft/internal/raft"
	"github.com/hraft-io/hraft/internal/runtime"
	"github.com/hraft-io/hraft/internal/types"
)

// RaftNode is a classic Raft site — the paper's baseline — exposed so
// applications can compare protocols under identical transports and
// workloads. It supports static membership only (the paper's baseline
// scope); use Node (Fast Raft) for dynamic networks.
type RaftNode struct {
	host    *runtime.Host
	rn      *raft.Node
	commits chan Entry

	mu      sync.Mutex
	waiters map[ProposalID]chan Index
	stopped bool
}

// NewRaftNode builds and starts a classic Raft node. The Options fields
// MemberTimeoutRounds and DisableFastTrack do not apply and are ignored.
func NewRaftNode(opts Options) (*RaftNode, error) {
	if opts.ID == types.None {
		return nil, fmt.Errorf("hraft: Options.ID is required")
	}
	if opts.Transport == nil {
		return nil, fmt.Errorf("hraft: Options.Transport is required")
	}
	if opts.Storage == nil {
		opts.Storage = NewMemoryStorage()
	}
	rn, err := raft.New(raft.Config{
		ID:                 opts.ID,
		Bootstrap:          types.NewConfig(opts.Peers...),
		Storage:            opts.Storage,
		HeartbeatInterval:  opts.HeartbeatInterval,
		ElectionTimeoutMin: opts.ElectionTimeoutMin,
		ElectionTimeoutMax: opts.ElectionTimeoutMax,
		ProposalTimeout:    opts.ProposalTimeout,
		SnapshotThreshold:  opts.SnapshotThreshold,
		Snapshotter:        opts.Snapshotter,
		Rand:               rand.New(rand.NewSource(mixSeed(opts.Seed, opts.ID))),
	})
	if err != nil {
		return nil, fmt.Errorf("hraft: %w", err)
	}
	buf := opts.CommitBuffer
	if buf <= 0 {
		buf = 1024
	}
	n := &RaftNode{
		rn:      rn,
		commits: make(chan Entry, buf),
		waiters: make(map[ProposalID]chan Index),
	}
	n.host = runtime.NewHost(rn, opts.Transport, runtime.Callbacks{
		OnCommit: func(e Entry) {
			if opts.OnCommit != nil {
				opts.OnCommit(e)
			}
			n.commits <- e
		},
		OnResolve: func(r types.Resolution) {
			n.mu.Lock()
			ch, ok := n.waiters[r.PID]
			if ok {
				delete(n.waiters, r.PID)
			}
			n.mu.Unlock()
			if ok {
				ch <- r.Index
			}
		},
	})
	return n, nil
}

// ID returns the node's identity.
func (n *RaftNode) ID() NodeID { return n.rn.ID() }

// Role returns the node's current role.
func (n *RaftNode) Role() Role {
	var r Role
	n.host.Do(func(_ time.Duration, _ runtime.Machine) { r = n.rn.Role() })
	return r
}

// Leader returns the node's view of the current leader.
func (n *RaftNode) Leader() NodeID {
	var l NodeID
	n.host.Do(func(_ time.Duration, _ runtime.Machine) { l = n.rn.LeaderID() })
	return l
}

// Term returns the node's current term.
func (n *RaftNode) Term() Term {
	var t Term
	n.host.Do(func(_ time.Duration, _ runtime.Machine) { t = n.rn.Term() })
	return t
}

// CommitIndex returns the node's commit index.
func (n *RaftNode) CommitIndex() Index {
	var i Index
	n.host.Do(func(_ time.Duration, _ runtime.Machine) { i = n.rn.CommitIndex() })
	return i
}

// Commits streams committed entries in log order; it must be consumed.
func (n *RaftNode) Commits() <-chan Entry { return n.commits }

// Propose submits an entry and waits for it to commit.
func (n *RaftNode) Propose(ctx context.Context, data []byte) (Index, error) {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return 0, ErrStopped
	}
	n.mu.Unlock()
	ch := make(chan Index, 1)
	var pid ProposalID
	n.host.Do(func(now time.Duration, _ runtime.Machine) {
		pid = n.rn.Propose(now, data)
		n.mu.Lock()
		n.waiters[pid] = ch
		n.mu.Unlock()
	})
	select {
	case idx := <-ch:
		return idx, nil
	case <-ctx.Done():
		n.mu.Lock()
		delete(n.waiters, pid)
		n.mu.Unlock()
		return 0, ctx.Err()
	}
}

// ProposeAsync submits an entry without waiting.
func (n *RaftNode) ProposeAsync(data []byte) ProposalID {
	var pid ProposalID
	n.host.Do(func(now time.Duration, _ runtime.Machine) {
		pid = n.rn.Propose(now, data)
	})
	return pid
}

// Stop halts the node.
func (n *RaftNode) Stop() {
	n.mu.Lock()
	n.stopped = true
	n.mu.Unlock()
	n.host.Stop()
}
