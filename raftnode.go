package hraft

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"github.com/hraft-io/hraft/internal/audit"
	"github.com/hraft-io/hraft/internal/raft"
	"github.com/hraft-io/hraft/internal/runtime"
	"github.com/hraft-io/hraft/internal/types"
)

// RaftNode is a classic Raft site — the paper's baseline — exposed so
// applications can compare protocols under identical transports and
// workloads. It supports static membership only (the paper's baseline
// scope); use Node (Fast Raft) for dynamic networks.
type RaftNode struct {
	host    *runtime.Host
	rn      *raft.Node
	aud     *audit.Auditor
	commits chan Entry
	proposalWaiters
	readWaiters
}

// NewRaftNode builds and starts a classic Raft node. The Options fields
// MemberTimeoutRounds and DisableFastTrack do not apply and are ignored.
func NewRaftNode(opts Options) (*RaftNode, error) {
	if opts.ID == types.None {
		return nil, fmt.Errorf("hraft: Options.ID is required")
	}
	if opts.Transport == nil {
		return nil, fmt.Errorf("hraft: Options.Transport is required")
	}
	if opts.Storage == nil {
		opts.Storage = NewMemoryStorage()
	}
	rec, aud := newRecorder(opts.ID, opts.Trace)
	rn, err := raft.New(raft.Config{
		ID:                  opts.ID,
		Bootstrap:           types.NewConfig(opts.Peers...),
		Storage:             opts.Storage,
		HeartbeatInterval:   opts.HeartbeatInterval,
		ElectionTimeoutMin:  opts.ElectionTimeoutMin,
		ElectionTimeoutMax:  opts.ElectionTimeoutMax,
		ProposalTimeout:     opts.ProposalTimeout,
		SnapshotThreshold:   opts.SnapshotThreshold,
		Snapshotter:         opts.Snapshotter,
		MaxEntriesPerAppend: opts.MaxEntriesPerAppend,
		MaxInflightAppends:  opts.MaxInflightAppends,
		MaxInflightBytes:    opts.MaxInflightBytes,
		MaxSnapshotChunk:    opts.MaxSnapshotChunk,
		SessionTTL:          opts.SessionTTL,
		Rand:                rand.New(rand.NewSource(mixSeed(opts.Seed, opts.ID))),
		Recorder:            rec,
	})
	if err != nil {
		return nil, fmt.Errorf("hraft: %w", err)
	}
	buf := opts.CommitBuffer
	if buf <= 0 {
		buf = 1024
	}
	n := &RaftNode{
		rn:              rn,
		aud:             aud,
		commits:         make(chan Entry, buf),
		proposalWaiters: newProposalWaiters(),
		readWaiters:     newReadWaiters(),
	}
	n.host = runtime.NewHost(rn, opts.Transport, runtime.Callbacks{
		OnCommit: func(e Entry) {
			if opts.OnCommit != nil {
				opts.OnCommit(e)
			}
			n.commits <- e
		},
		OnResolve:      n.resolve,
		OnReadDone:     n.resolveRead,
		ApplyQueueSize: opts.ApplyQueueSize,
		Recorder:       rec,
	})
	wireDurability(n.host, opts.Storage, rec)
	return n, nil
}

// ID returns the node's identity.
func (n *RaftNode) ID() NodeID { return n.rn.ID() }

// Role returns the node's current role.
func (n *RaftNode) Role() Role {
	var r Role
	n.host.Do(func(_ time.Duration, _ runtime.Machine) { r = n.rn.Role() })
	return r
}

// Leader returns the node's view of the current leader.
func (n *RaftNode) Leader() NodeID {
	var l NodeID
	n.host.Do(func(_ time.Duration, _ runtime.Machine) { l = n.rn.LeaderID() })
	return l
}

// Term returns the node's current term.
func (n *RaftNode) Term() Term {
	var t Term
	n.host.Do(func(_ time.Duration, _ runtime.Machine) { t = n.rn.Term() })
	return t
}

// CommitIndex returns the node's commit index.
func (n *RaftNode) CommitIndex() Index {
	var i Index
	n.host.Do(func(_ time.Duration, _ runtime.Machine) { i = n.rn.CommitIndex() })
	return i
}

// Commits streams committed entries in log order; it must be consumed.
func (n *RaftNode) Commits() <-chan Entry { return n.commits }

// Metrics returns a snapshot of the node's monotonic replication counters
// (see Node.Metrics).
func (n *RaftNode) Metrics() map[string]uint64 {
	var m map[string]uint64
	n.host.Do(func(_ time.Duration, _ runtime.Machine) { m = n.rn.Metrics() })
	n.aud.MergeMetrics(m)
	return m
}

// Propose submits an entry and waits for it to commit. Note that a retry
// after a lost acknowledgment can commit twice; use
// OpenSession/Session.Propose for exactly-once semantics.
func (n *RaftNode) Propose(ctx context.Context, data []byte) (Index, error) {
	return n.await(ctx, n.host, func(now time.Duration) ProposalID {
		return n.rn.Propose(now, data)
	})
}

// ProposeAsync submits an entry without waiting.
func (n *RaftNode) ProposeAsync(data []byte) ProposalID {
	var pid ProposalID
	n.host.Do(func(now time.Duration, _ runtime.Machine) {
		pid = n.rn.Propose(now, data)
	})
	return pid
}

// Stop halts the node.
func (n *RaftNode) Stop() {
	n.markStopped()
	n.markReadsStopped()
	n.host.Stop()
}
