package hraft

import (
	"context"
	"errors"
	"sync"
	"time"

	"github.com/hraft-io/hraft/internal/replica"
	"github.com/hraft-io/hraft/internal/runtime"
	"github.com/hraft-io/hraft/internal/types"
)

// ReadConsistency selects how strongly a Read is ordered against writes:
// ReadLinearizable (quorum-confirmed ReadIndex), ReadLeaseBased
// (clock-free within the leader lease, falling back to ReadIndex),
// ReadStale (local commit index, no confirmation) or ReadFollowerLocal
// (leader-confirmed index, served from the receiving node's state).
type ReadConsistency = types.ReadConsistency

// Read consistency modes.
const (
	// ReadLinearizable confirms leadership with one heartbeat round before
	// releasing the read (no log write, one quorum round — shared by every
	// read registered in the same round).
	ReadLinearizable = types.ReadLinearizable
	// ReadLeaseBased serves reads instantly while the leader lease —
	// derated below the minimum election timeout by observed RTTs — is
	// valid; zero log appends and zero extra quorum rounds inside the
	// window.
	ReadLeaseBased = types.ReadLeaseBased
	// ReadStale answers immediately from whichever node got the read.
	ReadStale = types.ReadStale
	// ReadFollowerLocal is linearizable like ReadLinearizable but served by
	// the node that received the read: it obtains a quorum-confirmed index
	// from the leader, then resolves once its OWN commit index covers that
	// index — apply through the returned index and answer from local state.
	// The confirmation round is the same, but the read's data never crosses
	// to the leader, so bulky scans spread across followers.
	ReadFollowerLocal = types.ReadFollowerLocal
)

// PeerStatus is a snapshot of one peer's replication progress as tracked
// by the leader: state (probe/replicate/snapshot), match/next indices,
// smoothed RTT estimates and in-flight window occupancy.
type PeerStatus = replica.PeerStatus

// ErrReadFailed is returned when a read could not be confirmed — the
// serving leader was deposed mid-read, or (for CRaftNode.ReadGlobal) the
// site does not run the cluster's global instance. Retry, or route the
// read to the current leader.
var ErrReadFailed = errors.New("hraft: read not confirmed; retry against the current leader")

// readOutcome is a resolved read as delivered to a waiter.
type readOutcome struct {
	index Index
	ok    bool
}

// readWaiters is the per-wrapper bookkeeping that turns read resolutions
// into completed Read calls, mirroring proposalWaiters.
type readWaiters struct {
	mu      sync.Mutex
	waiters map[uint64]chan readOutcome
	stopped bool
}

func newReadWaiters() readWaiters {
	return readWaiters{waiters: make(map[uint64]chan readOutcome)}
}

// resolveRead completes a waiting read (wired as the host's OnReadDone).
func (w *readWaiters) resolveRead(d types.ReadDone) {
	w.mu.Lock()
	ch, ok := w.waiters[d.ID]
	if ok {
		delete(w.waiters, d.ID)
	}
	w.mu.Unlock()
	if ok {
		ch <- readOutcome{index: d.Index, ok: d.OK}
	}
}

// markReadsStopped makes subsequent awaits fail fast with ErrStopped.
func (w *readWaiters) markReadsStopped() {
	w.mu.Lock()
	w.stopped = true
	w.mu.Unlock()
}

// awaitRead runs submit on the host, registers a waiter for the returned
// read token and blocks until it resolves or ctx expires.
func (w *readWaiters) awaitRead(ctx context.Context, host *runtime.Host, submit func(now time.Duration) uint64) (Index, error) {
	w.mu.Lock()
	if w.stopped {
		w.mu.Unlock()
		return 0, ErrStopped
	}
	w.mu.Unlock()
	ch := make(chan readOutcome, 1)
	var id uint64
	host.Do(func(now time.Duration, _ runtime.Machine) {
		id = submit(now)
		w.mu.Lock()
		w.waiters[id] = ch
		w.mu.Unlock()
	})
	select {
	case out := <-ch:
		if !out.ok {
			return 0, ErrReadFailed
		}
		return out.index, nil
	case <-ctx.Done():
		w.mu.Lock()
		delete(w.waiters, id)
		w.mu.Unlock()
		return 0, ctx.Err()
	}
}

// --- Node (Fast Raft) -------------------------------------------------------

// Read performs a linearizable read: it returns a log index such that
// every write acknowledged before Read was called is at or below it, and
// no log entry is written. Read the application state machine after
// applying (consuming Commits) through the returned index. Reads from any
// node are forwarded to the leader and confirmed with a single heartbeat
// round shared by all concurrently pending reads.
func (n *Node) Read(ctx context.Context) (Index, error) {
	return n.ReadWith(ctx, ReadLinearizable)
}

// ReadWith performs a read under an explicit consistency mode (see
// ReadConsistency).
func (n *Node) ReadWith(ctx context.Context, c ReadConsistency) (Index, error) {
	return n.awaitRead(ctx, n.host, func(now time.Duration) uint64 {
		return n.fr.Read(now, c)
	})
}

// PeerStatus reports the per-peer replication progress tracked by this
// node (empty unless it currently leads): progress state, match/next,
// srtt/rttvar and inflight bytes.
func (n *Node) PeerStatus() []PeerStatus {
	var s []PeerStatus
	n.host.Do(func(_ time.Duration, _ runtime.Machine) { s = n.fr.PeerStatus() })
	return s
}

// --- RaftNode (classic Raft baseline) ---------------------------------------

// Read performs a linearizable read (see Node.Read).
func (n *RaftNode) Read(ctx context.Context) (Index, error) {
	return n.ReadWith(ctx, ReadLinearizable)
}

// ReadWith performs a read under an explicit consistency mode.
func (n *RaftNode) ReadWith(ctx context.Context, c ReadConsistency) (Index, error) {
	return n.awaitRead(ctx, n.host, func(now time.Duration) uint64 {
		return n.rn.Read(now, c)
	})
}

// PeerStatus reports the per-peer replication progress tracked by this
// node (empty unless it currently leads).
func (n *RaftNode) PeerStatus() []PeerStatus {
	var s []PeerStatus
	n.host.Do(func(_ time.Duration, _ runtime.Machine) { s = n.rn.PeerStatus() })
	return s
}

// --- CRaftNode (hierarchical) -----------------------------------------------

// Read performs a site-local linearizable read: it is served by the
// cluster's local Fast Raft leader and returns a local-log index, without
// ever crossing a cluster boundary — local reads stay independent of
// cross-site RTT. Writes acknowledged by Propose commit locally first, so
// a local read observes every acknowledged write of this cluster.
func (n *CRaftNode) Read(ctx context.Context) (Index, error) {
	return n.ReadWith(ctx, ReadLinearizable)
}

// ReadWith performs a site-local read under an explicit consistency mode.
func (n *CRaftNode) ReadWith(ctx context.Context, c ReadConsistency) (Index, error) {
	return n.awaitRead(ctx, n.host, func(now time.Duration) uint64 {
		return n.cn.Read(now, c)
	})
}

// ReadGlobal escalates to the global ring: it linearizes the read against
// the global batch log (ReadIndex among the cluster leaders) and resolves
// once this site has replayed the confirmed global index, returning that
// global-log index. It must be called on a site that currently leads its
// cluster (ErrReadFailed otherwise); use it when the local replay
// position must be confirmed against the ring.
func (n *CRaftNode) ReadGlobal(ctx context.Context) (Index, error) {
	return n.awaitRead(ctx, n.host, func(now time.Duration) uint64 {
		return n.cn.ReadGlobal(now, ReadLinearizable)
	})
}

// PeerStatus reports the local instance's per-peer replication progress
// (empty unless this site leads its cluster).
func (n *CRaftNode) PeerStatus() []PeerStatus {
	var s []PeerStatus
	n.host.Do(func(_ time.Duration, _ runtime.Machine) { s = n.cn.PeerStatus() })
	return s
}

// GlobalPeerStatus reports the global instance's per-peer replication
// progress (empty unless this site leads the global ring).
func (n *CRaftNode) GlobalPeerStatus() []PeerStatus {
	var s []PeerStatus
	n.host.Do(func(_ time.Duration, _ runtime.Machine) { s = n.cn.GlobalPeerStatus() })
	return s
}
