package hraft

import (
	"context"
	"errors"
	"sync"
	"time"

	"github.com/hraft-io/hraft/internal/runtime"
	"github.com/hraft-io/hraft/internal/types"
)

// SessionID identifies a client session: the log index at which the
// session's registration entry committed, so every replica derives the
// same identity.
type SessionID = types.SessionID

// ErrSessionExpired is returned by Session.Propose when the session is no
// longer known to the cluster (expired by TTL or evicted by the session
// cap) or when the cached response for a retried sequence has been
// dropped. The proposal was NOT applied; the client must open a fresh
// session and decide for itself whether to re-submit.
var ErrSessionExpired = errors.New("hraft: session expired or response no longer cached")

// errProposalAborted reports that a submit callback declined to propose;
// callers that can abort (ShardNode.Split/Merge) replace it with the
// specific validation error.
var errProposalAborted = errors.New("hraft: proposal aborted before submission")

// Session is a client-session handle providing exactly-once proposal
// semantics: proposals carry a (SessionID, sequence) identity that
// survives node restarts and log compaction, so a retry whose original
// commit acknowledgment was lost returns the original commit index
// instead of committing a second time.
//
// A Session is safe for concurrent use, but proposals are serialized:
// sequence order is part of the exactly-once contract (a higher sequence
// committing first would make the replicas classify the lower one as an
// old duplicate), so each Propose/ProposeAt waits for the previous one to
// finish. Use separate sessions for independent concurrent streams. To
// resume a session after a process restart, persist the ID and the last
// used sequence number and reattach with AttachSession.
type Session struct {
	id      SessionID
	propose func(ctx context.Context, sid SessionID, seq, ack uint64, data []byte) (Index, error)

	// seqMu guards the sequence counter and ack floor; flightMu serializes
	// in-flight proposals so sequences reach the log in order.
	seqMu    sync.Mutex
	seq      uint64
	ack      uint64
	flightMu sync.Mutex
}

// ID returns the session identity (persist it to reattach after a
// restart).
func (s *Session) ID() SessionID { return s.id }

// LastSeq returns the highest sequence number this handle has assigned
// (persist it alongside the ID to reattach after a restart).
func (s *Session) LastSeq() uint64 {
	s.seqMu.Lock()
	defer s.seqMu.Unlock()
	return s.seq
}

// Ack records the client's retry floor: a promise that no sequence below
// lowestSeq will ever be retried on this session. The floor piggybacks on
// the next Propose/ProposeAt, letting every replica drop the session's
// cached responses below it immediately instead of holding them until the
// per-session cap evicts them. Acknowledging a sequence you later retry
// surfaces as ErrSessionExpired — the cached response is gone. The floor
// only moves forward; a lower value is ignored.
func (s *Session) Ack(lowestSeq uint64) {
	s.seqMu.Lock()
	if lowestSeq > s.ack {
		s.ack = lowestSeq
	}
	s.seqMu.Unlock()
}

// Propose submits an entry under the next session sequence and waits for
// it to commit, returning its log index. If the context expires, the
// assigned sequence is burned and the proposal may still commit later —
// resolve it by retrying the same payload with ProposeAt(LastSeq()) before
// submitting anything new, to preserve exactly-once semantics.
func (s *Session) Propose(ctx context.Context, data []byte) (Index, error) {
	s.flightMu.Lock()
	defer s.flightMu.Unlock()
	s.seqMu.Lock()
	s.seq++
	seq, ack := s.seq, s.ack
	s.seqMu.Unlock()
	return s.proposeSerialized(ctx, seq, ack, data)
}

// ProposeAt submits an entry under an explicit session sequence: the retry
// path after a crash or timeout. If the sequence was already applied —
// even before a restart, even below a compacted log prefix — the original
// commit index is returned and the state machine does not apply the entry
// a second time.
func (s *Session) ProposeAt(ctx context.Context, seq uint64, data []byte) (Index, error) {
	s.flightMu.Lock()
	defer s.flightMu.Unlock()
	s.seqMu.Lock()
	if seq > s.seq {
		s.seq = seq
	}
	ack := s.ack
	s.seqMu.Unlock()
	return s.proposeSerialized(ctx, seq, ack, data)
}

// proposeSerialized runs one proposal; callers hold flightMu.
func (s *Session) proposeSerialized(ctx context.Context, seq, ack uint64, data []byte) (Index, error) {
	idx, err := s.propose(ctx, s.id, seq, ack, data)
	if err != nil {
		return 0, err
	}
	if idx == 0 {
		// Resolution index 0 is the cores' session-rejected signal.
		return 0, ErrSessionExpired
	}
	return idx, nil
}

// --- Waiter plumbing shared by the three node wrappers ----------------------

// proposalWaiters is the per-wrapper bookkeeping that turns proposal
// resolutions into completed Propose calls. Node, RaftNode and CRaftNode
// embed it; its methods are the single implementation of submit-and-await.
type proposalWaiters struct {
	mu      sync.Mutex
	waiters map[ProposalID]chan Index
	stopped bool
}

func newProposalWaiters() proposalWaiters {
	return proposalWaiters{waiters: make(map[ProposalID]chan Index)}
}

// resolve completes a waiting proposal (wired as the host's OnResolve).
func (w *proposalWaiters) resolve(r types.Resolution) {
	w.mu.Lock()
	ch, ok := w.waiters[r.PID]
	if ok {
		delete(w.waiters, r.PID)
	}
	w.mu.Unlock()
	if ok {
		ch <- r.Index
	}
}

// markStopped makes subsequent awaits fail fast with ErrStopped.
func (w *proposalWaiters) markStopped() {
	w.mu.Lock()
	w.stopped = true
	w.mu.Unlock()
}

// await runs submit on the host, registers a waiter for the returned
// proposal and blocks until it resolves or ctx expires. The zero index is
// passed through to callers (session rejection).
func (w *proposalWaiters) await(ctx context.Context, host *runtime.Host, submit func(now time.Duration) ProposalID) (Index, error) {
	w.mu.Lock()
	if w.stopped {
		w.mu.Unlock()
		return 0, ErrStopped
	}
	w.mu.Unlock()
	ch := make(chan Index, 1)
	var pid ProposalID
	host.Do(func(now time.Duration, _ runtime.Machine) {
		pid = submit(now)
		if pid == (ProposalID{}) {
			return
		}
		w.mu.Lock()
		w.waiters[pid] = ch
		w.mu.Unlock()
	})
	// A zero ID means submit aborted before proposing (e.g. an invalid
	// shard split); nothing will ever resolve it.
	if pid == (ProposalID{}) {
		return 0, errProposalAborted
	}
	select {
	case idx := <-ch:
		return idx, nil
	case <-ctx.Done():
		w.mu.Lock()
		delete(w.waiters, pid)
		w.mu.Unlock()
		return 0, ctx.Err()
	}
}

// --- Node (Fast Raft) -------------------------------------------------------

// OpenSession registers a new client session and waits for the
// registration to commit. The resulting Session provides exactly-once
// Propose semantics across retries, node restarts and log compaction.
func (n *Node) OpenSession(ctx context.Context) (*Session, error) {
	idx, err := n.await(ctx, n.host, func(now time.Duration) ProposalID {
		return n.fr.OpenSession(now)
	})
	if err != nil {
		return nil, err
	}
	return n.AttachSession(SessionID(idx), 0), nil
}

// AttachSession resumes a previously opened session from its persisted ID
// and last used sequence number (e.g. after the client process
// restarted). Attaching does not verify the session still exists; an
// expired session surfaces as ErrSessionExpired on the next Propose.
func (n *Node) AttachSession(id SessionID, lastSeq uint64) *Session {
	return &Session{
		id:  id,
		seq: lastSeq,
		propose: func(ctx context.Context, sid SessionID, seq, ack uint64, data []byte) (Index, error) {
			return n.await(ctx, n.host, func(now time.Duration) ProposalID {
				return n.fr.ProposeSession(now, sid, seq, ack, data)
			})
		},
	}
}

// --- RaftNode (classic Raft baseline) ---------------------------------------

// OpenSession registers a new client session (see Node.OpenSession).
func (n *RaftNode) OpenSession(ctx context.Context) (*Session, error) {
	idx, err := n.await(ctx, n.host, func(now time.Duration) ProposalID {
		return n.rn.OpenSession(now)
	})
	if err != nil {
		return nil, err
	}
	return n.AttachSession(SessionID(idx), 0), nil
}

// AttachSession resumes a previously opened session (see
// Node.AttachSession).
func (n *RaftNode) AttachSession(id SessionID, lastSeq uint64) *Session {
	return &Session{
		id:  id,
		seq: lastSeq,
		propose: func(ctx context.Context, sid SessionID, seq, ack uint64, data []byte) (Index, error) {
			return n.await(ctx, n.host, func(now time.Duration) ProposalID {
				return n.rn.ProposeSession(now, sid, seq, ack, data)
			})
		},
	}
}

// --- CRaftNode (hierarchical) -----------------------------------------------

// OpenSession registers a new client session at the intra-cluster level:
// duplicates are withheld from the local commit stream, and therefore
// never reach the global batch log twice either.
func (n *CRaftNode) OpenSession(ctx context.Context) (*Session, error) {
	idx, err := n.await(ctx, n.host, func(now time.Duration) ProposalID {
		return n.cn.OpenSession(now)
	})
	if err != nil {
		return nil, err
	}
	return n.AttachSession(SessionID(idx), 0), nil
}

// AttachSession resumes a previously opened session (see
// Node.AttachSession).
func (n *CRaftNode) AttachSession(id SessionID, lastSeq uint64) *Session {
	return &Session{
		id:  id,
		seq: lastSeq,
		propose: func(ctx context.Context, sid SessionID, seq, ack uint64, data []byte) (Index, error) {
			return n.await(ctx, n.host, func(now time.Duration) ProposalID {
				return n.cn.ProposeSession(now, sid, seq, ack, data)
			})
		},
	}
}
