package hraft

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"github.com/hraft-io/hraft/internal/audit"
	"github.com/hraft-io/hraft/internal/core/fastraft"
	"github.com/hraft-io/hraft/internal/runtime"
	"github.com/hraft-io/hraft/internal/shard"
	"github.com/hraft-io/hraft/internal/storage"
	"github.com/hraft-io/hraft/internal/trace"
	"github.com/hraft-io/hraft/internal/types"
)

// GroupID identifies one consensus group of a sharded node.
type GroupID = types.GroupID

// ShardGroup names one initial group and the inclusive lower bound of its
// key range (the first group's Start must be "").
type ShardGroup = shard.GroupSpec

// ShardStorageFn maps a group to its stable storage view. All views should
// share one store (one WAL directory, one memory fabric) so fsyncs batch
// across groups; see OpenShardWAL.
type ShardStorageFn = func(gid GroupID) Storage

// OpenShardWAL opens one shared write-ahead-log directory for a sharded
// node: the returned fabric hands each group its own namespace inside the
// directory, every group's records ride the same segments and the same
// group-commit flusher (one fsync covers every group's batch), and the
// returned meta storage (the directory's flat namespace) carries the
// node's routing journal. Closing the meta storage closes the whole WAL.
func OpenShardWAL(path string, opt WALOptions) (ShardStorageFn, Storage, error) {
	w, err := storage.OpenWALOptions(path, opt)
	if err != nil {
		return nil, nil, err
	}
	return func(gid GroupID) Storage { return w.Group(gid) }, w, nil
}

// ShardCommit is one committed entry attributed to its group.
type ShardCommit struct {
	Group GroupID
	Entry Entry
}

// ShardOptions configures a sharded node: N consensus groups multiplexed
// over one process, one transport endpoint and one shared storage fabric.
type ShardOptions struct {
	// ID is this process's identity; every group's membership is in terms
	// of process IDs (required).
	ID NodeID
	// Peers is the initial voting membership of every group.
	Peers []NodeID
	// Groups is the initial range table (required). Keys route to the
	// group owning the greatest Start that is <= the key.
	Groups []ShardGroup
	// Transport connects the process to its peers (required). All groups
	// share it; same-destination messages coalesce into ShardBatch frames.
	Transport Transport
	// Storage supplies each group's stable storage view (default: an
	// independent in-memory store per group). Use OpenShardWAL for a
	// production fabric with cross-group fsync batching.
	Storage ShardStorageFn
	// Meta persists the routing journal so splits and merges survive
	// restarts (default: in-memory; OpenShardWAL returns the right one).
	Meta Storage
	// SplitSeed, when set, builds a daughter group's initial state image
	// at split apply (see shard.Config.SplitSeed).
	SplitSeed func(parent, daughter GroupID, pivot string) []byte
	// MaxBatchBytes bounds one coalesced ShardBatch (0 = 48 KiB).
	MaxBatchBytes int
	// RetireDrain keeps merged-away groups serving stragglers (0 = 1s).
	RetireDrain time.Duration
	// HeartbeatInterval is each group leader's tick period (0 = 100ms).
	HeartbeatInterval time.Duration
	// ElectionTimeoutMin/Max bound the randomized election timeout.
	ElectionTimeoutMin time.Duration
	// ElectionTimeoutMax must exceed ElectionTimeoutMin when set.
	ElectionTimeoutMax time.Duration
	// ProposalTimeout is the proposer's re-propose period.
	ProposalTimeout time.Duration
	// SnapshotThreshold enables per-group log compaction (0 = disabled).
	SnapshotThreshold int
	// MaxEntriesPerAppend caps AppendEntries payloads (0 = unlimited).
	MaxEntriesPerAppend int
	// MaxSnapshotChunk streams snapshots in bounded chunks (0 = whole).
	MaxSnapshotChunk int
	// Seed drives randomized timeouts (0 = time-based).
	Seed int64
	// OnCommit, when set, observes every committed entry with its group.
	OnCommit func(GroupID, Entry)
	// CommitBuffer sizes the Commits channel (default 1024).
	CommitBuffer int
	// ApplyQueueSize bounds the commit→apply pipeline (0 = default).
	ApplyQueueSize int
	// Trace enables the flight recorder: one recorder per group (events
	// are group-tagged) plus the online safety auditor across all of them.
	Trace *TraceOptions
}

// ShardNode is a sharded Fast Raft process running on real time: many
// consensus groups behind one endpoint, one ticker wheel and one storage
// fabric. Keys route to groups by range; groups split, merge and move
// leadership at runtime.
type ShardNode struct {
	host    *runtime.Host
	mgr     *shard.Manager
	aud     *audit.Auditor
	commits chan ShardCommit
	proposalWaiters
	readWaiters
}

// NewShardNode builds and starts a sharded node.
func NewShardNode(opts ShardOptions) (*ShardNode, error) {
	if opts.ID == types.None {
		return nil, errors.New("hraft: ShardOptions.ID is required")
	}
	if opts.Transport == nil {
		return nil, errors.New("hraft: ShardOptions.Transport is required")
	}
	if opts.Storage == nil {
		mem := make(map[GroupID]Storage)
		opts.Storage = func(gid GroupID) Storage {
			st, ok := mem[gid]
			if !ok {
				st = NewMemoryStorage()
				mem[gid] = st
			}
			return st
		}
	}
	if opts.Meta == nil {
		opts.Meta = NewMemoryStorage()
	}
	var aud *audit.Auditor
	if opts.Trace != nil {
		aud = audit.New(audit.Options{})
	}
	seed := mixSeed(opts.Seed, opts.ID)
	recs := make(map[GroupID]*trace.Recorder)
	mgr, err := shard.New(shard.Config{
		ProcessID: opts.ID,
		Groups:    opts.Groups,
		Storage:   opts.Storage,
		Meta:      opts.Meta,
		SplitSeed: opts.SplitSeed,
		NewCore: func(gid GroupID, boot Membership, st Storage) (*fastraft.Node, error) {
			var rec *trace.Recorder
			if opts.Trace != nil {
				// One recorder per group: events are group-tagged and lease
				// auditing tracks each group's timeline separately.
				rec = trace.New(trace.Config{
					Node:       string(opts.ID) + "/" + string(gid),
					Size:       opts.Trace.Size,
					SlowOp:     opts.Trace.SlowOp,
					Logger:     opts.Trace.Logger,
					SampleRate: opts.Trace.SampleRate,
				})
				rec.SetGroup(string(gid))
				aud.AttachTo(rec)
				recs[gid] = rec
			}
			return fastraft.New(fastraft.Config{
				ID:                  opts.ID,
				Bootstrap:           boot,
				Storage:             st,
				HeartbeatInterval:   opts.HeartbeatInterval,
				ElectionTimeoutMin:  opts.ElectionTimeoutMin,
				ElectionTimeoutMax:  opts.ElectionTimeoutMax,
				ProposalTimeout:     opts.ProposalTimeout,
				SnapshotThreshold:   opts.SnapshotThreshold,
				MaxEntriesPerAppend: opts.MaxEntriesPerAppend,
				MaxSnapshotChunk:    opts.MaxSnapshotChunk,
				Rand:                rand.New(rand.NewSource(mixSeed(seed, NodeID(gid)))),
				Recorder:            rec,
			})
		},
		MaxBatchBytes: opts.MaxBatchBytes,
		RetireDrain:   opts.RetireDrain,
	}, types.NewConfig(opts.Peers...))
	if err != nil {
		return nil, fmt.Errorf("hraft: %w", err)
	}
	buf := opts.CommitBuffer
	if buf <= 0 {
		buf = 1024
	}
	n := &ShardNode{
		mgr:             mgr,
		aud:             aud,
		commits:         make(chan ShardCommit, buf),
		proposalWaiters: newProposalWaiters(),
		readWaiters:     newReadWaiters(),
	}
	n.host = runtime.NewHost(mgr, opts.Transport, runtime.Callbacks{
		OnGroupCommit: func(gid types.GroupID, e Entry) {
			if opts.OnCommit != nil {
				opts.OnCommit(gid, e)
			}
			n.commits <- ShardCommit{Group: gid, Entry: e}
		},
		OnGroupResolve:  func(_ types.GroupID, r types.Resolution) { n.resolve(r) },
		OnGroupReadDone: func(_ types.GroupID, d types.ReadDone) { n.resolveRead(d) },
		ApplyQueueSize:  opts.ApplyQueueSize,
	})
	// The meta storage is the shared store's handle (OpenShardWAL returns
	// the WAL itself): its durability callbacks release every group's gated
	// outputs through one SyncDone fan-out.
	wireDurability(n.host, opts.Meta, nil)
	return n, nil
}

// ID returns the process identity.
func (n *ShardNode) ID() NodeID { return n.mgr.ID() }

// Groups returns the live group IDs in sorted order.
func (n *ShardNode) Groups() []GroupID {
	var out []GroupID
	n.host.Do(func(_ time.Duration, _ runtime.Machine) { out = n.mgr.Groups() })
	return out
}

// ShardRange is one row of the routing table.
type ShardRange struct {
	Start string  `json:"start"`
	Group GroupID `json:"group"`
}

// Ranges returns the routing table in key order.
func (n *ShardNode) Ranges() []ShardRange {
	var out []ShardRange
	n.host.Do(func(_ time.Duration, _ runtime.Machine) {
		for _, r := range n.mgr.Ranges() {
			out = append(out, ShardRange{Start: r.Start, Group: r.Group})
		}
	})
	return out
}

// Route returns the group currently owning key.
func (n *ShardNode) Route(key string) GroupID {
	var gid GroupID
	n.host.Do(func(_ time.Duration, _ runtime.Machine) { gid = n.mgr.Route(key) })
	return gid
}

// Commits streams committed entries (group-attributed) in per-group log
// order. The channel must be consumed.
func (n *ShardNode) Commits() <-chan ShardCommit { return n.commits }

// Propose routes data by key and waits for the owning group to commit it,
// returning the index within that group's log.
func (n *ShardNode) Propose(ctx context.Context, key string, data []byte) (Index, error) {
	return n.await(ctx, n.host, func(now time.Duration) ProposalID {
		_, pid := n.mgr.ProposeKey(now, key, data)
		return pid
	})
}

// ProposeAsync routes data by key and submits it without waiting,
// returning the owning group and the proposal ID.
func (n *ShardNode) ProposeAsync(key string, data []byte) (GroupID, ProposalID) {
	var gid GroupID
	var pid ProposalID
	n.host.Do(func(now time.Duration, _ runtime.Machine) {
		gid, pid = n.mgr.ProposeKey(now, key, data)
	})
	return gid, pid
}

// Read performs a linearizable read barrier in the group owning key,
// returning that group's linearization index.
func (n *ShardNode) Read(ctx context.Context, key string) (Index, error) {
	return n.ReadWith(ctx, key, ReadLinearizable)
}

// ReadWith performs a read barrier under the given consistency mode.
func (n *ShardNode) ReadWith(ctx context.Context, key string, c ReadConsistency) (Index, error) {
	return n.awaitRead(ctx, n.host, func(now time.Duration) uint64 {
		_, token := n.mgr.Read(now, key, c)
		return token
	})
}

// Split proposes carving the keys >= pivot out of their current group into
// a new group named daughter, and waits for the split entry to commit in
// the parent group. Every member then creates the daughter at the same log
// position.
func (n *ShardNode) Split(ctx context.Context, daughter GroupID, pivot string) (Index, error) {
	var splitErr error
	idx, err := n.await(ctx, n.host, func(now time.Duration) ProposalID {
		pid, err := n.mgr.Split(now, daughter, pivot)
		if err != nil {
			splitErr = err
		}
		return pid
	})
	if splitErr != nil {
		return 0, splitErr
	}
	return idx, err
}

// Merge proposes folding the named group's range into its left neighbor
// and waits for the merge entry to commit in the retiring group.
func (n *ShardNode) Merge(ctx context.Context, right GroupID) (Index, error) {
	var mergeErr error
	idx, err := n.await(ctx, n.host, func(now time.Duration) ProposalID {
		pid, err := n.mgr.Merge(now, right)
		if err != nil {
			mergeErr = err
		}
		return pid
	})
	if mergeErr != nil {
		return 0, mergeErr
	}
	return idx, err
}

// TransferLeader orders the named group's leadership to the target
// process. Returns false when this process does not lead that group or the
// target is not a member.
func (n *ShardNode) TransferLeader(gid GroupID, target NodeID) bool {
	var ok bool
	n.host.Do(func(_ time.Duration, _ runtime.Machine) {
		ok = n.mgr.TransferLeader(gid, target)
	})
	return ok
}

// GroupStatus is one group's consensus state on this process.
type GroupStatus struct {
	Group       GroupID `json:"group"`
	Start       string  `json:"start"`
	Role        string  `json:"role"`
	Term        uint64  `json:"term"`
	Leader      string  `json:"leader,omitempty"`
	CommitIndex uint64  `json:"commit_index"`
	LastIndex   uint64  `json:"last_index"`
	Pending     int     `json:"pending_proposals"`
}

// ShardStatus snapshots every live group's state (served as JSON at
// /debug/hraft/shards by DebugHandler).
func (n *ShardNode) ShardStatus() []GroupStatus {
	var out []GroupStatus
	n.host.Do(func(_ time.Duration, _ runtime.Machine) {
		starts := make(map[GroupID]string)
		for _, r := range n.mgr.Ranges() {
			starts[r.Group] = r.Start
		}
		for _, gid := range n.mgr.Groups() {
			core := n.mgr.Group(gid)
			if core == nil {
				continue
			}
			out = append(out, GroupStatus{
				Group:       gid,
				Start:       starts[gid],
				Role:        core.Role().String(),
				Term:        uint64(core.Term()),
				Leader:      string(core.LeaderID()),
				CommitIndex: uint64(core.CommitIndex()),
				LastIndex:   uint64(core.LastIndex()),
				Pending:     core.PendingProposals(),
			})
		}
	})
	return out
}

// DebugStatus implements StatusSource: the first group's consensus view
// plus process-wide commit progress; per-group detail is at
// /debug/hraft/shards (ShardStatus).
func (n *ShardNode) DebugStatus(traceTail int) DebugStatus {
	var ds DebugStatus
	n.host.Do(func(_ time.Duration, _ runtime.Machine) {
		ds = DebugStatus{
			Node:        string(n.mgr.ID()),
			Role:        n.mgr.Role().String(),
			Term:        uint64(n.mgr.Term()),
			Leader:      string(n.mgr.LeaderID()),
			CommitIndex: uint64(n.mgr.CommitIndex()),
		}
	})
	return ds
}

// DebugTop snapshots every live group's rate/latency aggregates (served
// at /debug/hraft/top): one row per group, each fed by that group's own
// recorder's sliding window. Safe from any goroutine.
func (n *ShardNode) DebugTop() DebugTop {
	var t DebugTop
	n.host.Do(func(now time.Duration, _ runtime.Machine) {
		t = DebugTop{Node: string(n.mgr.ID())}
		for _, gid := range n.mgr.Groups() {
			core := n.mgr.Group(gid)
			if core == nil {
				continue
			}
			g := DebugTopGroup{
				Group:       string(gid),
				Role:        core.Role().String(),
				Term:        uint64(core.Term()),
				Leader:      string(core.LeaderID()),
				CommitIndex: uint64(core.CommitIndex()),
				LastIndex:   uint64(core.LastIndex()),
			}
			g.CommitLag = g.LastIndex - g.CommitIndex
			g.Proposals = pickLive(core.Recorder().LiveStats(now), string(gid))
			t.Groups = append(t.Groups, g)
		}
	})
	fillTopMetrics(&t, n.Metrics())
	return t
}

// Metrics merges every group's core counters (summed) with the shard.*
// multiplexing counters: routed proposals, coalesced frames, batches sent,
// splits/merges applied, groups retired, leader transfers.
func (n *ShardNode) Metrics() map[string]uint64 {
	var m map[string]uint64
	n.host.Do(func(_ time.Duration, _ runtime.Machine) { m = n.mgr.Metrics() })
	n.aud.MergeMetrics(m)
	return m
}

// AuditReport returns the cross-group online safety auditor's report
// (zero report when tracing is disabled).
func (n *ShardNode) AuditReport() AuditReport { return n.aud.Snapshot() }

// Stop halts the process: every group goes down together, like a crash.
// Storage remains usable for a restart.
func (n *ShardNode) Stop() {
	n.markStopped()
	n.markReadsStopped()
	n.host.Stop()
}
