package hraft_test

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	hraft "github.com/hraft-io/hraft"
)

// shardOptions returns aggressive timers so real-time sharded tests finish
// quickly. Two initial groups: keys < "m" in g-a, keys >= "m" in g-m.
func shardOptions(id hraft.NodeID, peers []hraft.NodeID, tr hraft.Transport, seed int64) hraft.ShardOptions {
	return hraft.ShardOptions{
		ID:    id,
		Peers: peers,
		Groups: []hraft.ShardGroup{
			{ID: "g-a", Start: ""},
			{ID: "g-m", Start: "m"},
		},
		Transport:          tr,
		HeartbeatInterval:  10 * time.Millisecond,
		ElectionTimeoutMin: 40 * time.Millisecond,
		ElectionTimeoutMax: 80 * time.Millisecond,
		ProposalTimeout:    100 * time.Millisecond,
		RetireDrain:        50 * time.Millisecond,
		Seed:               seed,
	}
}

// shardCommitLog drains one ShardNode's commit stream into a per-group map.
type shardCommitLog struct {
	mu   sync.Mutex
	seen map[hraft.GroupID][]string
}

func drainShardCommits(n *hraft.ShardNode) *shardCommitLog {
	l := &shardCommitLog{seen: make(map[hraft.GroupID][]string)}
	go func() {
		for c := range n.Commits() {
			if c.Entry.Kind != hraft.EntryNormal || len(c.Entry.Data) == 0 {
				continue
			}
			l.mu.Lock()
			l.seen[c.Group] = append(l.seen[c.Group], string(c.Entry.Data))
			l.mu.Unlock()
		}
	}()
	return l
}

func (l *shardCommitLog) count(gid hraft.GroupID, want string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, s := range l.seen[gid] {
		if s == want {
			n++
		}
	}
	return n
}

func startShardCluster(t *testing.T, n int, seed int64) ([]*hraft.ShardNode, []*shardCommitLog) {
	t.Helper()
	net := hraft.NewInProcNetwork(seed)
	peers := make([]hraft.NodeID, n)
	for i := range peers {
		peers[i] = hraft.NodeID(fmt.Sprintf("p%d", i+1))
	}
	nodes := make([]*hraft.ShardNode, n)
	logs := make([]*shardCommitLog, n)
	for i, id := range peers {
		node, err := hraft.NewShardNode(shardOptions(id, peers, net.Endpoint(id), seed+int64(i)))
		if err != nil {
			t.Fatalf("NewShardNode(%s): %v", id, err)
		}
		nodes[i] = node
		logs[i] = drainShardCommits(node)
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Stop()
		}
		net.Close()
	})
	return nodes, logs
}

// waitShard polls cond until it holds or the deadline passes.
func waitShard(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestShardNodePublicAPI(t *testing.T) {
	nodes, logs := startShardCluster(t, 3, 21)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Keys route by range and commit exactly once in the owning group, on
	// every process.
	if gid := nodes[0].Route("apple"); gid != "g-a" {
		t.Fatalf(`Route("apple") = %q, want g-a`, gid)
	}
	if gid := nodes[0].Route("melon"); gid != "g-m" {
		t.Fatalf(`Route("melon") = %q, want g-m`, gid)
	}
	if _, err := nodes[0].Propose(ctx, "apple", []byte("apple=1")); err != nil {
		t.Fatalf("propose apple: %v", err)
	}
	if _, err := nodes[1].Propose(ctx, "melon", []byte("melon=1")); err != nil {
		t.Fatalf("propose melon: %v", err)
	}
	for i, l := range logs {
		i, l := i, l
		waitShard(t, 10*time.Second, fmt.Sprintf("process %d to apply both writes", i), func() bool {
			return l.count("g-a", "apple=1") == 1 && l.count("g-m", "melon=1") == 1
		})
		if n := l.count("g-m", "apple=1"); n != 0 {
			t.Fatalf("process %d applied apple=1 in g-m %d times", i, n)
		}
	}

	// A linearizable read barrier resolves per group, from any process.
	wIdx, err := nodes[2].Propose(ctx, "melon", []byte("melon=2"))
	if err != nil {
		t.Fatalf("propose melon=2: %v", err)
	}
	rIdx, err := nodes[0].Read(ctx, "melon")
	if err != nil {
		t.Fatalf("read melon: %v", err)
	}
	if rIdx < wIdx {
		t.Fatalf("read index %d below committed write %d", rIdx, wIdx)
	}

	// Splitting g-a at "g" creates g-g on every process and re-routes keys.
	if _, err := nodes[0].Split(ctx, "g-g", "g"); err != nil {
		t.Fatalf("split: %v", err)
	}
	for i, n := range nodes {
		i, n := i, n
		waitShard(t, 10*time.Second, fmt.Sprintf("process %d to open g-g", i), func() bool {
			return len(n.Ranges()) == 3 && n.Route("grape") == "g-g"
		})
	}
	if _, err := nodes[1].Propose(ctx, "grape", []byte("grape=1")); err != nil {
		t.Fatalf("propose grape: %v", err)
	}
	for i, l := range logs {
		i, l := i, l
		waitShard(t, 10*time.Second, fmt.Sprintf("process %d to apply grape=1", i), func() bool {
			return l.count("g-g", "grape=1") == 1
		})
	}

	// A stale split (duplicate daughter) is rejected before proposing.
	if _, err := nodes[0].Split(ctx, "g-g", "h"); err == nil {
		t.Fatal("duplicate split did not fail")
	}

	// ShardStatus reports every live group with its range start.
	st := nodes[0].ShardStatus()
	if len(st) != 3 {
		t.Fatalf("ShardStatus reported %d groups, want 3", len(st))
	}
	starts := make(map[hraft.GroupID]string)
	for _, g := range st {
		starts[g.Group] = g.Start
	}
	if starts["g-g"] != "g" || starts["g-m"] != "m" || starts["g-a"] != "" {
		t.Fatalf("ShardStatus starts wrong: %v", starts)
	}

	// The shard multiplexing counters surface through Metrics.
	m := nodes[0].Metrics()
	if m["shard.proposals_routed"] == 0 {
		t.Fatalf("shard.proposals_routed = 0; metrics: %v", m)
	}
	if m["shard.gauge.groups"] != 3 {
		t.Fatalf("shard.gauge.groups = %d, want 3", m["shard.gauge.groups"])
	}
}

// TestShardNodeWALRestartRecoversRouting runs one sharded process over a
// real shared WAL: a split survives a stop/reopen through the routing
// journal, and every group's log replays from the shared segments.
func TestShardNodeWALRestartRecoversRouting(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "p1.wal")
	net := hraft.NewInProcNetwork(3)
	defer net.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	start := func() (*hraft.ShardNode, *shardCommitLog) {
		groups, meta, err := hraft.OpenShardWAL(walPath, hraft.WALOptions{})
		if err != nil {
			t.Fatalf("OpenShardWAL: %v", err)
		}
		opts := shardOptions("p1", []hraft.NodeID{"p1"}, net.Endpoint("p1"), 3)
		opts.Storage = groups
		opts.Meta = meta
		node, err := hraft.NewShardNode(opts)
		if err != nil {
			t.Fatalf("NewShardNode: %v", err)
		}
		return node, drainShardCommits(node)
	}

	node, _ := start()
	if _, err := node.Propose(ctx, "apple", []byte("apple=1")); err != nil {
		t.Fatalf("propose apple: %v", err)
	}
	if _, err := node.Propose(ctx, "melon", []byte("melon=1")); err != nil {
		t.Fatalf("propose melon: %v", err)
	}
	if _, err := node.Split(ctx, "g-t", "t"); err != nil {
		t.Fatalf("split: %v", err)
	}
	waitShard(t, 10*time.Second, "g-t to open", func() bool {
		return node.Route("tiger") == "g-t"
	})
	if _, err := node.Propose(ctx, "tiger", []byte("tiger=1")); err != nil {
		t.Fatalf("propose tiger: %v", err)
	}
	node.Stop()

	node2, log2 := start()
	defer node2.Stop()
	// The routing journal restores the split before any consensus runs.
	if got := len(node2.Ranges()); got != 3 {
		t.Fatalf("restarted node has %d ranges, want 3", got)
	}
	if gid := node2.Route("tiger"); gid != "g-t" {
		t.Fatalf(`restarted Route("tiger") = %q, want g-t`, gid)
	}
	// Every group's pre-restart writes replay from the shared WAL.
	waitShard(t, 10*time.Second, "restart replay", func() bool {
		return log2.count("g-a", "apple=1") == 1 &&
			log2.count("g-m", "melon=1") == 1 &&
			log2.count("g-t", "tiger=1") == 1
	})
	if _, err := node2.Propose(ctx, "apricot", []byte("apricot=1")); err != nil {
		t.Fatalf("propose after restart: %v", err)
	}
}
